// Summarized-block replay: a sealed trace is decoded exactly once
// into a flat op stream in which every block instance's body events
// (data accesses, retire batches, branch verdicts, D-TLB outcomes)
// are pre-aggregated, together with the instance's distinct-line data
// footprint. Replays then walk the decoded stream instead of the byte
// encoding: single-access bodies (the overwhelming case in the suite's
// workloads) apply as one direct data access, multi-access bodies
// whose footprint is fully resident in the live L1D apply as one bulk
// arithmetic update — stats, LRU ticks, dirty bits, energy, and
// stalls land exactly where the per-access path puts them (see
// cache.TryApplyFootprint) — and everything else falls back to the
// exact per-access path. The original byte-decoding loop survives as
// Trace.ReplayExact, the differential oracle every summarized result
// is tested against.
//
// The op stream is deliberately tiny — 16 bytes per op — because the
// replay loop is memory-bound: the suite's traces decode to millions
// of ops, so every extra op byte is a byte of DRAM traffic on every
// replay. The common case (an intra-method block entry with a short
// retire batch and at most one data access) packs into one word of
// bit-fields plus one word holding the access itself; everything rare
// — method entries, masked fetch walks, wide bodies — overflows into
// a fat side table consulted only when an op's ext bit is set.
package rtrace

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/bits"
	"sync"

	"acedo/internal/cache"
	"acedo/internal/isa"
	"acedo/internal/machine"
	"acedo/internal/program"
	"acedo/internal/vm"
)

// Summary op kinds. Every op carries a boundary action (what kind of
// trace event opened it) plus the aggregated body events that followed
// it up to the next boundary.
const (
	opSeq       = iota // no boundary action (leading body events)
	opEnter            // method entry (+ first block fetch); always ext
	opBlock            // intra-method block entry (fetch)
	opExit             // method return
	opHalt             // explicit halt (unwinds all frames)
	opEndHalted        // end marker: program halted
	opEndBudget        // end marker: instruction budget reached
)

// Packed-op bit layout of sumOp.w. Any op whose fields do not fit
// (and every opEnter or masked fetch) is stored as an ext record
// instead, with opExtBit set and sumOp.d holding the summary.ext
// index.
const (
	opKindBits = 3
	opExtBit   = 1 << 3
	opFastBit  = 1 << 4

	opLinesShift = 5  // 6 bits: I-lines in the fetch walk
	opFootShift  = 11 // 6 bits: footprint length (multi-access bodies)
	opDataShift  = 17 // 10 bits: body data-access count
	opTLBShift   = 27 // 10 bits: body D-TLB miss count
	opBrShift    = 37 // 8 bits: body branch mispredictions
	opBatchShift = 45 // 19 bits: body retired-instruction total

	opLinesMax = 1<<6 - 1
	opFootMax  = 1<<6 - 1
	opDataMax  = 1<<10 - 1
	opTLBMax   = 1<<10 - 1
	opBrMax    = 1<<8 - 1
	opBatchMax = 1<<19 - 1
	opInstrMax = 1<<8 - 1 // block instr count packable into the pc stream

	// maxPackedPC bounds the block-start pc packable into the 32-bit
	// pc stream alongside the 8-bit instr count; blocks beyond it (no
	// suite program comes near) are stored as ext records, which carry
	// the full-width pc.
	maxPackedPC = 1<<24 - 1
)

// sumOp is one boundary event plus its aggregated body, packed into 16
// bytes. w holds the kind and the bit-fields above; d holds the body's
// single data access (wordAddr<<1 | write) when nData==1, the packed
// dataOff|footOff<<32 table offsets when nData>=2, or the ext-table
// index when opExtBit is set.
type sumOp struct {
	w uint64
	d uint64
}

// sumExt is the unpacked form of a rare op: method entries (which need
// the method ID), masked fetch walks (which need the line range and
// the recorded I-TLB/L1I outcome masks), and bodies whose counts
// overflow the packed fields.
type sumExt struct {
	firstLine uint64 // opEnter/opBlock: first I-line byte address
	pc        uint64 // opEnter/opBlock: block's first-instruction index
	batch     uint64 // body: total retired instructions
	tlbMask   uint64 // fetch walk: recorded I-TLB miss mask
	missMask  uint64 // fetch walk: recorded L1I miss mask
	dataOff   uint32 // body: offset into summary.data
	footOff   uint32 // body: offset into summary.foot
	nData     uint32 // body: data access count
	nInstrs   uint32 // opEnter/opBlock: block instruction count
	dtlb      uint32 // body: recorded D-TLB misses
	brWrong   uint32 // body: recorded branch mispredictions
	method    int32  // opEnter: method ID; -1 otherwise
	nLines    uint16 // opEnter/opBlock: I-lines in the fetch walk
	nFoot     uint8  // body: footprint length (0 with fastOK unset)
	fastOK    bool   // footprint small enough for the bulk-apply path
}

// summary is a trace decoded once against a program: the packed op
// stream, the side tables rare ops and listener replays index into,
// and the flat data-access and footprint tables for multi-access
// bodies. Immutable after construction and shared by every concurrent
// replay of the trace.
type summary struct {
	ops     []sumOp
	pcs     []uint32 // per packed block op: pc<<8 | nInstrs (listener replays only)
	ext     []sumExt
	data    []uint64 // wordAddr<<1 | write bit, in access order
	foot    []cache.FootLine
	err     error // non-nil: the byte stream is malformed
	retired uint64
	progSig uint64
}

// totalBatch is the summary's retired-instruction grand total,
// saturating on overflow (fuzz-harness helper: hostile uvarint batches
// can encode near-2^64 totals). The builder accumulates it at decode
// time rather than summing committed ops, so it also counts batches in
// an open op a malformed tail never commits — exactly the batches the
// streaming exact replay issues before it hits the bad tail.
func (s *summary) totalBatch() uint64 {
	return s.retired
}

// sumState hangs the lazily built summary off a Trace behind a
// pointer, so sealed Trace values stay copyable.
type sumState struct {
	mu    sync.Mutex
	built bool
	sum   *summary
}

// summaryMaxTraceBytes bounds the traces that get summarized: the
// decoded op stream costs roughly 6× the encoded bytes, so very large
// recordings keep the byte-replay path instead of ballooning memory.
const summaryMaxTraceBytes = 96 << 20

// iLine is the L1I/L1D line size the summarizer computes footprints
// and fetch-walk ranges at (matches machine.New's cache geometry).
const iLine = isa.ILineBytes

// progSigOf fingerprints the program content a summary's resolved
// block geometry depends on: replays of the same cached trace always
// rebuild an identical program, but a mismatch must fail safe (byte
// replay) rather than apply another program's line ranges.
func progSigOf(prog *program.Program) uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	put(uint64(prog.NumMethods()))
	for _, m := range prog.Methods {
		put(uint64(len(m.Blocks)))
		put(uint64(m.StaticInstrs))
		if len(m.Blocks) > 0 {
			put(m.Blocks[0].PC)
		}
	}
	return h.Sum64()
}

// summaryFor returns the trace's summary resolved against prog,
// building it on first use (guarded by the trace's state lock). It
// returns nil when the trace is too large to summarize, when the
// trace was hand-built without summary state (tests), or when prog
// does not match the program the cached summary was resolved against
// — callers must use ReplayExact then.
func (t *Trace) summaryFor(prog *program.Program) *summary {
	st := t.sumState
	if st == nil {
		return nil
	}
	st.mu.Lock()
	if !st.built {
		st.built = true
		if t.size <= summaryMaxTraceBytes {
			st.sum = summarize(t, prog)
		}
	}
	s := st.sum
	st.mu.Unlock()
	if s != nil && s.progSig != progSigOf(prog) {
		return nil
	}
	return s
}

// opBuild accumulates one op's boundary fields and body aggregates
// before it is committed as a packed op or an ext record. The open
// block's geometry is captured by value at the boundary (blkLines is 0
// when no block is open) so the struct stays pointer-free — it is
// reset on every boundary event, and a pointer field would cost a GC
// write barrier per block on the record hot path.
type opBuild struct {
	kind uint8
	// esc precomputes the boundary-time ext conditions (method
	// identity, fetch masks, geometry overflow) so the commit fast
	// lane only re-checks the body-dependent ones.
	esc       bool
	method    int32
	blkInstrs uint32
	pcWord    uint32 // packed pc<<8|nInstrs; 0 when no block is open
	blkLines  uint64 // I-lines in the fetch walk; 0 = no open block
	blkFirst  uint64
	blkPC     uint64
	tlbMask   uint64
	missMask  uint64
	batch     uint64
	dtlb      uint32
	brWrong   uint32
}

// blkGeom is a block's geometry precomputed once per builder: the
// fetch-walk line count, the packed pc word, and whether any of it
// overflows the packed-op fields (esc forces the ext form). Programs
// are a few hundred blocks, so the table costs nothing next to the
// millions of boundary events it serves.
type blkGeom struct {
	lines  uint64
	first  uint64
	pc     uint64
	instrs uint32
	pcWord uint32 // pc<<8 | nInstrs; 0 when esc
	esc    bool
}

// clampMasks clamps recorded fetch masks to the block's line count:
// the per-line walk (ReplayFetchLines) never consults bits at or above
// nLines, so clamping keeps the bulk popcount charges identical to the
// exact walk even on hostile hand-built traces. Engine-produced masks
// only ever set in-range bits, so this is the identity on real
// recordings.
func clampMasks(nLines, tlbMask, missMask uint64) (uint64, uint64) {
	if tlbMask|missMask == 0 {
		return 0, 0
	}
	if nLines < 64 {
		clamp := uint64(1)<<nLines - 1
		return tlbMask & clamp, missMask & clamp
	}
	return tlbMask, missMask
}

// sumBuilder is the single construction path for summaries: the same
// boundary/body state machine is fed either by the decode-once
// summarizer (summarize, walking the byte stream) or by the direct
// recorder (SummaryRecorder, driven straight from the engine's event
// callbacks). Sharing the machine is what makes the two paths
// structurally incapable of drifting apart: a boundary event commits
// the open op via next(), body events accumulate into open/body, and
// emit() decides packed-vs-ext identically regardless of who called.
type sumBuilder struct {
	s      *summary
	prog   *program.Program
	geo    [][]blkGeom // per method, per block: precomputed geometry
	curGeo []blkGeom   // geo of the current frame's method; nil outside
	stack  []*program.Method
	cur    *program.Method
	open   opBuild
	body   []uint64 // current op's data accesses, wordAddr<<1|write
}

func (b *sumBuilder) init(prog *program.Program, opGuess int) {
	b.s = &summary{
		progSig: progSigOf(prog),
		ops:     make([]sumOp, 0, opGuess),
		pcs:     make([]uint32, 0, opGuess),
	}
	b.prog = prog
	b.open = opBuild{kind: opSeq, method: -1}
	b.geo = make([][]blkGeom, prog.NumMethods())
	for i := range b.geo {
		m := prog.Method(program.MethodID(i))
		gs := make([]blkGeom, len(m.Blocks))
		for j, blk := range m.Blocks {
			g := &gs[j]
			g.lines = (blk.LastLine-blk.FirstLine)/iLine + 1
			g.first = blk.FirstLine
			g.pc = blk.PC
			g.instrs = uint32(len(blk.Instrs))
			g.esc = g.lines > opLinesMax || g.instrs > opInstrMax || g.pc > maxPackedPC
			if !g.esc {
				g.pcWord = uint32(g.pc<<8 | uint64(g.instrs))
			}
		}
		b.geo[i] = gs
	}
}

// footprintOf appends the body's distinct-line footprint — each
// line with the ordinal of its last access and the OR of its writes
// — returning false when it exceeds cache.MaxFootprint (the body
// then stays exact-only).
func (b *sumBuilder) footprintOf() (uint8, bool) {
	s := b.s
	base := len(s.foot)
	for i, d := range b.body {
		line := ((d >> 1) * 8) &^ (iLine - 1)
		write := d&1 != 0
		found := false
		for j := base; j < len(s.foot); j++ {
			if s.foot[j].Addr == line {
				s.foot[j].Ordinal = uint32(i + 1)
				if write {
					s.foot[j].Write = true
				}
				found = true
				break
			}
		}
		if found {
			continue
		}
		if len(s.foot)-base >= cache.MaxFootprint {
			s.foot = s.foot[:base]
			return 0, false
		}
		s.foot = append(s.foot, cache.FootLine{Addr: line, Ordinal: uint32(i + 1), Write: write})
	}
	return uint8(len(s.foot) - base), true
}

// addBatch accumulates a retire batch into the open op and the
// summary's saturating grand total. Both construction paths route
// batches through here so totalBatch covers even an op the stream
// never commits.
func (b *sumBuilder) addBatch(n uint64) {
	b.open.batch += n
	if b.s.retired+n < b.s.retired {
		b.s.retired = ^uint64(0)
	} else {
		b.s.retired += n
	}
}

// growOps doubles the op/pc streams' shared capacity. Explicit
// doubling (instead of append's large-slice growth factor) keeps the
// total bytes ever copied proportional to the final stream size — the
// streams are the record hot path's biggest arrays.
func (b *sumBuilder) growOps() {
	c := 2 * cap(b.s.ops)
	ops := make([]sumOp, len(b.s.ops), c)
	copy(ops, b.s.ops)
	b.s.ops = ops
	pcs := make([]uint32, len(b.s.pcs), c)
	copy(pcs, b.s.pcs)
	b.s.pcs = pcs
}

// growData ensures the data table can absorb the current body,
// doubling (at least) on exhaustion.
func (b *sumBuilder) growData(need int) {
	c := 2 * cap(b.s.data)
	if c < need {
		c = need
	}
	if c < 1024 {
		c = 1024
	}
	data := make([]uint64, len(b.s.data), c)
	copy(data, b.s.data)
	b.s.data = data
}

// emit commits the open op: packed when every field fits and no
// ext-only feature (method identity, fetch masks) is involved, an
// ext record otherwise.
func (b *sumBuilder) emit() {
	s, open := b.s, &b.open
	nData := uint32(len(b.body))
	blkLines := open.blkLines
	nInstrs := open.blkInstrs
	blkPC := open.blkPC
	if blkLines == 0 {
		// No open block: the geometry fields may hold stale values
		// from the fast lanes' partial resets (they are dead while
		// blkLines is 0, but must not leak into ext records or the
		// ext decision).
		nInstrs, blkPC = 0, 0
	}
	if len(s.ops) == cap(s.ops) {
		b.growOps()
	}
	if len(s.data)+int(nData) > cap(s.data) {
		b.growData(len(s.data) + int(nData))
	}
	// fastOK only ever holds for multi-access bodies: single
	// accesses replay directly (an empty footprint would bulk-
	// "apply" vacuously, charging energy without touching the
	// cache), and footprintOf reports overflow for the rest.
	var nFoot uint8
	var fastOK bool
	if nData >= 2 {
		nFoot, fastOK = b.footprintOf()
	}
	ext := open.method >= 0 || open.tlbMask != 0 || open.missMask != 0 ||
		blkLines > opLinesMax || nData > opDataMax ||
		open.dtlb > opTLBMax || open.brWrong > opBrMax ||
		open.batch > opBatchMax || nInstrs > opInstrMax ||
		blkPC > maxPackedPC ||
		(nData == 1 && open.dtlb > 1)
	if ext {
		x := sumExt{
			batch:    open.batch,
			tlbMask:  open.tlbMask,
			missMask: open.missMask,
			dataOff:  uint32(len(s.data)),
			footOff:  uint32(len(s.foot)) - uint32(nFoot),
			nData:    nData,
			nInstrs:  nInstrs,
			dtlb:     open.dtlb,
			brWrong:  open.brWrong,
			method:   open.method,
			nLines:   uint16(blkLines),
			nFoot:    nFoot,
			fastOK:   fastOK,
		}
		if blkLines != 0 {
			x.firstLine = open.blkFirst
			x.pc = open.blkPC
		}
		s.data = append(s.data, b.body...)
		s.ops = append(s.ops, sumOp{
			w: uint64(open.kind) | opExtBit,
			d: uint64(len(s.ext)),
		})
		s.pcs = append(s.pcs, 0)
		s.ext = append(s.ext, x)
	} else {
		w := uint64(open.kind) |
			blkLines<<opLinesShift |
			uint64(nFoot)<<opFootShift |
			uint64(nData)<<opDataShift |
			uint64(open.dtlb)<<opTLBShift |
			uint64(open.brWrong)<<opBrShift |
			open.batch<<opBatchShift
		if fastOK {
			w |= opFastBit
		}
		var d uint64
		switch {
		case nData == 1:
			d = b.body[0]
		case nData >= 2:
			d = uint64(uint32(len(s.data))) | uint64(uint32(len(s.foot))-uint32(nFoot))<<32
			s.data = append(s.data, b.body...)
		}
		var pc uint32
		if blkLines != 0 {
			pc = uint32(blkPC<<8 | uint64(nInstrs))
		}
		s.ops = append(s.ops, sumOp{w: w, d: d})
		s.pcs = append(s.pcs, pc)
	}
	b.body = b.body[:0]
}

// next commits the open op and opens the next one at a boundary event.
// The overwhelmingly common op — an unmasked intra-method block with at
// most one data access and in-range counts — commits through an inline
// fast lane producing exactly emit's packed form: esc pre-checks every
// boundary-time ext condition, dtlb ≤ nData holds structurally (every
// dtlb increment is paired with a body append), and nFoot/fastOK are
// identically zero below two accesses.
func (b *sumBuilder) next(kind uint8) {
	o := &b.open
	if !o.esc && len(b.body) < 2 && o.batch <= opBatchMax && o.brWrong <= opBrMax {
		s := b.s
		if len(s.ops) == cap(s.ops) {
			b.growOps()
		}
		w := uint64(o.kind) |
			o.blkLines<<opLinesShift |
			uint64(len(b.body))<<opDataShift |
			uint64(o.dtlb)<<opTLBShift |
			uint64(o.brWrong)<<opBrShift |
			o.batch<<opBatchShift
		var d uint64
		if len(b.body) == 1 {
			d = b.body[0]
			b.body = b.body[:0]
		}
		s.ops = append(s.ops, sumOp{w: w, d: d})
		s.pcs = append(s.pcs, o.pcWord)
		// Partial reset: !esc guarantees method is -1 and both masks
		// are 0 already, and blkInstrs/blkFirst/blkPC are dead while
		// blkLines is 0 (setBlock rewrites them all together), so only
		// the body aggregates and the block markers need clearing.
		o.kind = kind
		o.pcWord = 0
		o.blkLines = 0
		o.batch = 0
		o.dtlb = 0
		o.brWrong = 0
		return
	}
	b.emit()
	b.open = opBuild{kind: kind, method: -1}
}

// enter opens an opEnter boundary for method id, clamping the
// recorded fetch masks to the entry block's line range.
func (b *sumBuilder) enter(id, tlbMask, missMask uint64) error {
	if id >= uint64(b.prog.NumMethods()) {
		return fmt.Errorf("%w: method %d out of range", ErrMalformed, id)
	}
	m := b.prog.Method(program.MethodID(id))
	b.stack = append(b.stack, m)
	b.cur = m
	b.curGeo = b.geo[id]
	b.next(opEnter)
	b.open.method = int32(id)
	b.setBlock(&b.curGeo[0], tlbMask, missMask)
	return nil
}

// setBlock installs a block's precomputed geometry as the open op's
// and clamps the recorded fetch masks to its line count.
func (b *sumBuilder) setBlock(g *blkGeom, tlbMask, missMask uint64) {
	o := &b.open
	o.blkLines = g.lines
	o.blkInstrs = g.instrs
	o.blkFirst = g.first
	o.blkPC = g.pc
	o.pcWord = g.pcWord
	o.tlbMask, o.missMask = clampMasks(g.lines, tlbMask, missMask)
	o.esc = o.method >= 0 || o.tlbMask|o.missMask != 0 || g.esc
}

// block opens an opBlock boundary for the current method's block idx.
// The ubiquitous case — unmasked fetch, plain geometry, a short body
// on the op being committed — runs fused: one inline commit-and-reopen
// producing exactly what next()+setBlock would, without the calls.
func (b *sumBuilder) block(idx, tlbMask, missMask uint64) error {
	if idx >= uint64(len(b.curGeo)) {
		return fmt.Errorf("%w: block %d out of range", ErrMalformed, idx)
	}
	o := &b.open
	g := &b.curGeo[idx]
	if tlbMask|missMask == 0 && !g.esc && !o.esc && len(b.body) < 2 &&
		o.batch <= opBatchMax && o.brWrong <= opBrMax {
		s := b.s
		if len(s.ops) == cap(s.ops) {
			b.growOps()
		}
		w := uint64(o.kind) |
			o.blkLines<<opLinesShift |
			uint64(len(b.body))<<opDataShift |
			uint64(o.dtlb)<<opTLBShift |
			uint64(o.brWrong)<<opBrShift |
			o.batch<<opBatchShift
		var d uint64
		if len(b.body) == 1 {
			d = b.body[0]
			b.body = b.body[:0]
		}
		s.ops = append(s.ops, sumOp{w: w, d: d})
		s.pcs = append(s.pcs, o.pcWord)
		o.kind = opBlock
		o.blkLines = g.lines
		o.blkInstrs = g.instrs
		o.blkFirst = g.first
		o.blkPC = g.pc
		o.pcWord = g.pcWord
		o.batch = 0
		o.dtlb = 0
		o.brWrong = 0
		return nil
	}
	b.next(opBlock)
	b.setBlock(g, tlbMask, missMask)
	return nil
}

// exit opens an opExit boundary, popping the frame stack.
func (b *sumBuilder) exit() error {
	if len(b.stack) == 0 {
		return fmt.Errorf("%w: exit with empty frame stack", ErrMalformed)
	}
	b.stack = b.stack[:len(b.stack)-1]
	if len(b.stack) > 0 {
		b.cur = b.stack[len(b.stack)-1]
		b.curGeo = b.geo[b.cur.ID]
	} else {
		b.cur = nil
		b.curGeo = nil
	}
	b.next(opExit)
	return nil
}

// halt opens an opHalt boundary, unwinding the frame stack.
func (b *sumBuilder) halt() {
	b.stack = b.stack[:0]
	b.cur = nil
	b.curGeo = nil
	b.next(opHalt)
}

// end commits the final op and appends the end-marker op itself.
func (b *sumBuilder) end(halted bool) {
	if halted {
		b.next(opEndHalted)
	} else {
		b.next(opEndBudget)
	}
	b.emit()
}

// summarize decodes the whole byte stream once into a sumBuilder,
// mirroring ReplayExact's decoder exactly: the same operand forms, the
// same validation, the same frame tracking for block-index resolution.
// A malformed stream yields a summary carrying the error Replay
// reports, so the byte path and the summarized path fail the same
// traces.
func summarize(t *Trace, prog *program.Program) *summary {
	// ~4.5 encoded bytes per boundary event across the suite's traces:
	// sizing the op stream up front keeps the build out of append's
	// copy-doubling regime.
	var b sumBuilder
	b.init(prog, t.size/4+16)
	s := b.s

	var prevAddr uint64

	fail := func(err error) *summary {
		s.err = err
		return s
	}

	for ci := 0; ci < len(t.chunks); ci++ {
		buf := t.chunks[ci]
		pos := 0
		for pos < len(buf) {
			opByte := buf[pos]
			pos++
			kind := opByte & 7
			pay := uint64(opByte >> 3)

			switch kind {
			case kBlock, kBatch, kEnter:
				if pay == payloadEscape {
					v, n := binary.Uvarint(buf[pos:])
					if n <= 0 {
						return fail(fmt.Errorf("%w: bad operand at chunk %d pos %d", ErrMalformed, ci, pos))
					}
					pos += n
					pay = v
				}
			}

			switch kind {
			case kBatch:
				b.addBatch(pay)

			case kData:
				write := pay & 1
				delta := pay >> 1
				if delta == 15 {
					v, n := binary.Uvarint(buf[pos:])
					if n <= 0 {
						return fail(fmt.Errorf("%w: bad data delta at chunk %d pos %d", ErrMalformed, ci, pos))
					}
					pos += n
					delta = v
				}
				addr := uint64(int64(prevAddr) + unzigzag(delta))
				prevAddr = addr
				b.body = append(b.body, addr<<1|write)

			case kBranch:
				if pay&1 == 0 {
					b.open.brWrong++
				}

			case kBlock:
				if err := b.block(pay, 0, 0); err != nil {
					return fail(err)
				}

			case kEnter:
				if err := b.enter(pay, 0, 0); err != nil {
					return fail(err)
				}

			case kExit:
				if err := b.exit(); err != nil {
					return fail(err)
				}

			case kHalt:
				b.halt()

			case kExt:
				switch pay {
				case extEndHalted:
					b.end(true)
					return s
				case extEndBudget:
					b.end(false)
					return s

				case extBlockMasks, extEnterMasks:
					v, n := binary.Uvarint(buf[pos:])
					if n <= 0 {
						return fail(fmt.Errorf("%w: bad masked-entry operand", ErrMalformed))
					}
					pos += n
					tlbMask, n := binary.Uvarint(buf[pos:])
					if n <= 0 {
						return fail(fmt.Errorf("%w: bad I-TLB mask", ErrMalformed))
					}
					pos += n
					missMask, n := binary.Uvarint(buf[pos:])
					if n <= 0 {
						return fail(fmt.Errorf("%w: bad L1I mask", ErrMalformed))
					}
					pos += n
					// Mask clamping happens inside enter/block
					// (clampMasks), after the same range validation
					// the unmasked forms get.
					if pay == extBlockMasks {
						if err := b.block(v, tlbMask, missMask); err != nil {
							return fail(err)
						}
						break
					}
					if err := b.enter(v, tlbMask, missMask); err != nil {
						return fail(err)
					}

				case extDataTLB:
					w, n := binary.Uvarint(buf[pos:])
					if n <= 0 {
						return fail(fmt.Errorf("%w: bad data flags", ErrMalformed))
					}
					pos += n
					delta, n := binary.Uvarint(buf[pos:])
					if n <= 0 {
						return fail(fmt.Errorf("%w: bad data delta", ErrMalformed))
					}
					pos += n
					addr := uint64(int64(prevAddr) + unzigzag(delta))
					prevAddr = addr
					b.body = append(b.body, addr<<1|(w&1))
					b.open.dtlb++

				default:
					return fail(fmt.Errorf("%w: unknown extended event %d", ErrMalformed, pay))
				}
			}
		}
	}
	return fail(fmt.Errorf("%w: missing end marker", ErrMalformed))
}

// sumWalker replays a summary's op stream into a live environment. It
// is the summarized counterpart of ReplayExact's event loop: boundary
// actions (fetch walks, listener calls, AOS method events, divergence
// checks) happen per op in recorded order, while each op's body is
// applied as aggregates — one IssueBatch + sampler settlement for the
// body's whole retire total (exact by the batched-watermark argument
// in vm.AOS.sampleDueN), bulk D-TLB/mispredict charges (commutative
// integer constants within an instance), and a direct access
// (single-access bodies), the footprint fast path, or the exact
// per-access loop for the data stream.
type sumWalker struct {
	s          *summary
	prog       *program.Program
	mach       *machine.Machine
	aos        *vm.AOS
	listener   func(pc uint64, instrs int)
	sampling   bool
	footOK     bool
	check      bool
	firstEnter bool
	frames     []rframe
	ids        []program.MethodID
	start      uint64
	batchSum   uint64
}

func newSumWalker(t *Trace, s *summary, env Env) *sumWalker {
	return &sumWalker{
		s:          s,
		prog:       env.Prog,
		mach:       env.Mach,
		aos:        env.AOS,
		listener:   env.BlockListener,
		sampling:   env.AOS.Params().SampleInterval != 0,
		footOK:     env.Mach.L1D.BlockBytes() == iLine,
		check:      t.truncated,
		firstEnter: true,
		frames:     make([]rframe, 0, 64),
		ids:        make([]program.MethodID, 0, 64),
		start:      env.Mach.Instructions(),
	}
}

// opBoundaryMask selects ops the fused walk cannot fold into a
// straight-line run: every ext op, and every packed kind with bit 0
// or bit 2 set (opEnter=1, opExit=3, opHalt=4, opEndHalted=5,
// opEndBudget=6). The foldable kinds — opSeq=0 and opBlock=2 — are
// exactly the ones with both bits clear.
const opBoundaryMask = opExtBit | 0b101

// walk replays ops[lo:hi). With cacheWork the live L1D/L2 simulate
// every body (direct access or footprint fast path when possible,
// exact loop otherwise); without it the walker performs only the
// state-independent work — AOS boundaries, sampler polls, retire
// batches, and the arithmetic charges — leaving the cache evolution
// to a span worker whose results are spliced in afterwards. done
// reports that an end-marker op was consumed.
//
// Listener-free replays take the fused path, which coalesces the
// arithmetic charges of straight-line runs; replays with a block
// listener must surface every block boundary individually.
func (w *sumWalker) walk(lo, hi int, cacheWork bool) (done bool, err error) {
	if w.listener == nil {
		return w.walkFused(lo, hi, cacheWork)
	}
	for i := lo; i < hi; i++ {
		done, err = w.applyOp(w.s.ops[i], i, cacheWork)
		if done || err != nil {
			return done, err
		}
	}
	return false, nil
}

// walkFused is walk for replays without a block listener. Within a
// straight-line run (consecutive seq/block ops — no method boundary,
// no end marker) the frame stack is constant and every non-cache
// charge is a sum of per-event constants over independent
// accumulators, so the run's fetch lines, retire batch, recorded
// mispredicts, and D-TLB misses can accumulate in locals and flush as
// single bulk charges at the run boundary. Bit-exactness of each
// merged charge: integer counters add associatively, power meters
// charge via Meter.AccessRepeat (one add per event regardless of
// call granularity), and the merged sampler poll delivers the same
// samples to the same frame stack (vm.AOS.sampleDueN covers the
// contiguous retire range identically however it is subdivided).
// Data accesses still apply one at a time, in order — only their
// surrounding arithmetic is batched. Boundary ops flush first, then
// take the exact per-op path, so AOS hooks and reconfigurations
// observe the same machine state as the unfused walk.
func (w *sumWalker) walkFused(lo, hi int, cacheWork bool) (done bool, err error) {
	mach, aos, s := w.mach, w.aos, w.s
	ops := s.ops[:hi]
	for i := lo; i < hi; {
		var lines, batch, br, dtlb uint64
		j := i
		for ; j < len(ops); j++ {
			o := ops[j]
			if o.w&opBoundaryMask != 0 {
				break
			}
			lines += o.w >> opLinesShift & opLinesMax
			if nData := o.w >> opDataShift & opDataMax; nData != 0 {
				dtlb += o.w >> opTLBShift & opTLBMax
				if cacheWork {
					if nData == 1 {
						mach.ReplayData(o.d>>1, o.d&1 != 0, false)
					} else {
						w.replayBody(o.w, o.d, nData, 0)
					}
				}
			}
			batch += o.w >> opBatchShift
			br += o.w >> opBrShift & opBrMax
		}
		if lines != 0 {
			mach.ReplayFetchCharges(lines, 0, 0)
		}
		if dtlb != 0 {
			mach.ChargeDataTLBMisses(dtlb)
		}
		if batch != 0 {
			mach.IssueBatch(batch)
			w.batchSum += batch
			if w.sampling {
				aos.ReplayBatchPoll(mach.Instructions(), batch, w.ids)
			}
		}
		if br != 0 {
			mach.ChargeMispredicts(br)
		}
		if j >= hi {
			return false, nil
		}
		done, err = w.applyOp(ops[j], j, cacheWork)
		if done || err != nil {
			return done, err
		}
		i = j + 1
	}
	return false, nil
}

// applyOp replays a single op exactly: the boundary action in
// recorded order, then the body, retire batch with sampler poll, and
// misprediction charges.
func (w *sumWalker) applyOp(o sumOp, i int, cacheWork bool) (done bool, err error) {
	mach, aos, s := w.mach, w.aos, w.s
	{
		if o.w&opExtBit != 0 {
			return w.applyExt(o.w&(1<<opKindBits-1), &s.ext[o.d], cacheWork)
		}
		switch o.w & (1<<opKindBits - 1) {
		case opSeq:

		case opBlock:
			if n := o.w >> opLinesShift & opLinesMax; n != 0 {
				mach.ReplayFetchCharges(n, 0, 0)
			}
			if w.listener != nil {
				p := uint64(s.pcs[i])
				w.listener(p>>8, int(p&opInstrMax))
			}

		case opExit:
			f := w.frames[len(w.frames)-1]
			w.frames = w.frames[:len(w.frames)-1]
			w.ids = w.ids[:len(w.ids)-1]
			aos.ReplayMethodExit(f.m.ID, mach.Instructions()-f.entry)
			if w.check && mach.Instructions() != w.start+w.batchSum {
				return false, ErrDiverged
			}

		case opHalt:
			now := mach.Instructions()
			for j := len(w.frames) - 1; j >= 0; j-- {
				aos.ReplayMethodExit(w.frames[j].m.ID, now-w.frames[j].entry)
			}
			w.frames = w.frames[:0]
			w.ids = w.ids[:0]
			if w.check && now != w.start+w.batchSum {
				return false, ErrDiverged
			}

		case opEndHalted, opEndBudget:
			return true, nil
		}

		if nData := o.w >> opDataShift & opDataMax; nData != 0 {
			dtlb := o.w >> opTLBShift & opTLBMax
			switch {
			case !cacheWork:
				if dtlb != 0 {
					mach.ChargeDataTLBMisses(dtlb)
				}
			case nData == 1:
				mach.ReplayData(o.d>>1, o.d&1 != 0, dtlb != 0)
			default:
				w.replayBody(o.w, o.d, nData, dtlb)
			}
		}
		if batch := o.w >> opBatchShift; batch != 0 {
			mach.IssueBatch(batch)
			w.batchSum += batch
			if w.sampling {
				aos.ReplayBatchPoll(mach.Instructions(), batch, w.ids)
			}
		}
		if br := o.w >> opBrShift & opBrMax; br != 0 {
			mach.ChargeMispredicts(br)
		}
	}
	return false, nil
}

// replayBody applies a packed multi-access body: the footprint bulk
// path when every line is resident, the exact per-access loop
// otherwise.
func (w *sumWalker) replayBody(opw, opd, nData, dtlb uint64) {
	mach := w.mach
	dataOff, footOff := uint32(opd), uint32(opd>>32)
	if opw&opFastBit != 0 && w.footOK {
		nFoot := opw >> opFootShift & opFootMax
		if mach.TryReplayDataFootprint(w.s.foot[footOff:uint64(footOff)+nFoot], nData, dtlb) {
			return
		}
	}
	for _, d := range w.s.data[dataOff : uint64(dataOff)+nData] {
		mach.ReplayData(d>>1, d&1 != 0, false)
	}
	if dtlb != 0 {
		mach.ChargeDataTLBMisses(dtlb)
	}
}

// applyExt replays one ext op: the boundary action (method entry with
// its fetch walk and AOS events, or a masked/overflowed block fetch),
// then the body from the ext record's full-width fields.
func (w *sumWalker) applyExt(kind uint64, x *sumExt, cacheWork bool) (done bool, err error) {
	mach, aos := w.mach, w.aos
	switch kind {
	case opEnter:
		m := w.prog.Method(program.MethodID(x.method))
		w.frames = append(w.frames, rframe{m: m, entry: mach.Instructions()})
		w.ids = append(w.ids, m.ID)
		w.fetch(x, cacheWork)
		if w.listener != nil && !w.firstEnter {
			w.listener(x.pc, int(x.nInstrs))
		}
		w.firstEnter = false
		aos.ReplayMethodEnter(m.ID)
		if w.check && mach.Instructions() != w.start+w.batchSum {
			return false, ErrDiverged
		}

	case opBlock:
		w.fetch(x, cacheWork)
		if w.listener != nil {
			w.listener(x.pc, int(x.nInstrs))
		}

	case opExit:
		f := w.frames[len(w.frames)-1]
		w.frames = w.frames[:len(w.frames)-1]
		w.ids = w.ids[:len(w.ids)-1]
		aos.ReplayMethodExit(f.m.ID, mach.Instructions()-f.entry)
		if w.check && mach.Instructions() != w.start+w.batchSum {
			return false, ErrDiverged
		}

	case opHalt:
		now := mach.Instructions()
		for j := len(w.frames) - 1; j >= 0; j-- {
			aos.ReplayMethodExit(w.frames[j].m.ID, now-w.frames[j].entry)
		}
		w.frames = w.frames[:0]
		w.ids = w.ids[:0]
		if w.check && now != w.start+w.batchSum {
			return false, ErrDiverged
		}

	case opEndHalted, opEndBudget:
		return true, nil
	}

	if x.nData > 0 {
		if cacheWork {
			applied := false
			if x.fastOK && w.footOK {
				foot := w.s.foot[x.footOff : x.footOff+uint32(x.nFoot)]
				applied = mach.TryReplayDataFootprint(foot, uint64(x.nData), uint64(x.dtlb))
			}
			if !applied {
				for _, d := range w.s.data[x.dataOff : x.dataOff+x.nData] {
					mach.ReplayData(d>>1, d&1 != 0, false)
				}
				if x.dtlb != 0 {
					mach.ChargeDataTLBMisses(uint64(x.dtlb))
				}
			}
		} else if x.dtlb != 0 {
			mach.ChargeDataTLBMisses(uint64(x.dtlb))
		}
	}
	if x.batch > 0 {
		mach.IssueBatch(x.batch)
		w.batchSum += x.batch
		if w.sampling {
			aos.ReplayBatchPoll(mach.Instructions(), x.batch, w.ids)
		}
	}
	if x.brWrong > 0 {
		mach.ChargeMispredicts(uint64(x.brWrong))
	}
	return false, nil
}

// fetch applies an ext op's recorded fetch walk. cacheWork=false
// replaces the recorded L1I misses' live L2 traffic with their state-
// independent charges only (the span-parallel spine's mode — the span
// worker simulates that L2 traffic privately).
func (w *sumWalker) fetch(x *sumExt, cacheWork bool) {
	if x.missMask == 0 {
		w.mach.ReplayFetchCharges(uint64(x.nLines), uint64(bits.OnesCount64(x.tlbMask)), 0)
		return
	}
	if cacheWork {
		last := x.firstLine + uint64(x.nLines-1)*iLine
		w.mach.ReplayFetchLines(x.firstLine, last, x.tlbMask, x.missMask)
		return
	}
	w.mach.ReplayFetchCharges(uint64(x.nLines), uint64(bits.OnesCount64(x.tlbMask)), uint64(bits.OnesCount64(x.missMask)))
}
