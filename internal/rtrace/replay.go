package rtrace

import (
	"encoding/binary"
	"fmt"

	"acedo/internal/machine"
	"acedo/internal/program"
	"acedo/internal/vm"
)

// Env is the live simulation a trace is replayed into: a fresh machine
// (with the scheme's managers already wired to it), the scheme's AOS,
// and the run's composed block listener (BBV accumulator and/or
// telemetry sampler), exactly as the engine would have received them.
type Env struct {
	Prog *program.Program
	Mach *machine.Machine
	AOS  *vm.AOS
	// BlockListener, when non-nil, observes every block entry —
	// identical to vm.Engine.SetBlockListener.
	BlockListener func(pc uint64, instrs int)
}

// rframe mirrors the engine's frame stack: replay needs each in-flight
// method's identity (for sample crediting and exit events) and its
// entry instruction count (for inclusive sizes).
type rframe struct {
	m     *program.Method
	entry uint64
}

// Replay drives the environment through the recorded architectural
// stream, reproducing a direct run of the same scheme bit-for-bit:
// machine calls happen in the recorded order at identical instruction
// counts, so cache/meter/timing state, sampler polls, fault-injector
// consultations, promotions, hook firings, and manager decisions all
// land exactly as they would under direct execution.
//
// Hotspot-style hooks that charge instrumentation overhead via the
// AOS are reproduced too — the overhead instructions issue at the same
// boundaries as in a direct run. The one case replay cannot reproduce
// is a truncated recording (instruction budget) under an
// overhead-charging scheme: the direct run's budget counts the
// overhead, so it stops earlier in program terms than the recorded
// stream. Truncated traces therefore verify at every method boundary
// that the machine's instruction count still equals the replayed batch
// total, and return ErrDiverged on the first overhead charge.
//
// Replay runs the summarized-block engine (summary.go): the byte
// stream is decoded once per trace into a pre-aggregated op stream,
// and block instances whose data footprints are resident in the live
// L1D apply as single bulk updates. The result is bit-identical to
// ReplayExact — the retained byte-decoding oracle — which Replay
// falls back to when the trace cannot be summarized (hand-built
// traces, oversized recordings, or a program mismatch).
func (t *Trace) Replay(env Env) error {
	s := t.summaryFor(env.Prog)
	if s == nil {
		return t.ReplayExact(env)
	}
	if s.err != nil {
		return s.err
	}
	w := newSumWalker(t, s, env)
	_, err := w.walk(0, len(s.ops), true)
	return err
}

// ReplayExact is the reference byte-decoding replay loop: it decodes
// and applies every recorded event one at a time. Replay's summarized
// engine is differentially tested against it; the two produce
// bit-identical machine, AOS, and listener effects on every trace
// they both accept.
func (t *Trace) ReplayExact(env Env) error {
	mach, aos, prog := env.Mach, env.AOS, env.Prog
	listener := env.BlockListener
	sampling := aos.Params().SampleInterval != 0

	frames := make([]rframe, 0, 64)
	ids := make([]program.MethodID, 0, 64)
	var cur *program.Method

	start := mach.Instructions()
	var batchSum uint64
	check := t.truncated
	var prevAddr uint64

	enterBlock := func(b *program.Block, tlbMask, missMask uint64) {
		mach.ReplayFetchLines(b.FirstLine, b.LastLine, tlbMask, missMask)
		if listener != nil {
			listener(b.PC, len(b.Instrs))
		}
	}

	// The trace's first Enter event is the engine's construction-time
	// entry push, which ran before the run wiring installed the block
	// listener — so replay performs its machine effects but does not
	// fire the listener, exactly like direct execution.
	firstEnter := true
	enterMethod := func(id program.MethodID, tlbMask, missMask uint64) {
		m := prog.Method(id)
		frames = append(frames, rframe{m: m, entry: mach.Instructions()})
		ids = append(ids, id)
		cur = m
		b := m.Blocks[0]
		mach.ReplayFetchLines(b.FirstLine, b.LastLine, tlbMask, missMask)
		if listener != nil && !firstEnter {
			listener(b.PC, len(b.Instrs))
		}
		firstEnter = false
		aos.ReplayMethodEnter(id)
	}

	for ci := 0; ci < len(t.chunks); ci++ {
		buf := t.chunks[ci]
		pos := 0
		for pos < len(buf) {
			opByte := buf[pos]
			pos++
			kind := opByte & 7
			pay := uint64(opByte >> 3)

			// Inline-or-uvarint operand for the kinds that carry one.
			switch kind {
			case kBlock, kBatch, kEnter:
				if pay == payloadEscape {
					v, n := binary.Uvarint(buf[pos:])
					if n <= 0 {
						return fmt.Errorf("%w: bad operand at chunk %d pos %d", ErrMalformed, ci, pos)
					}
					pos += n
					pay = v
				}
			}

			switch kind {
			case kBatch:
				mach.IssueBatch(pay)
				batchSum += pay
				if sampling {
					aos.ReplayBatchPoll(mach.Instructions(), pay, ids)
				}

			case kData:
				// Payload: bit 0 = write, bits 1-4 = zigzag delta.
				write := pay&1 != 0
				delta := pay >> 1
				if delta == 15 {
					v, n := binary.Uvarint(buf[pos:])
					if n <= 0 {
						return fmt.Errorf("%w: bad data delta at chunk %d pos %d", ErrMalformed, ci, pos)
					}
					pos += n
					delta = v
				}
				addr := uint64(int64(prevAddr) + unzigzag(delta))
				prevAddr = addr
				mach.ReplayData(addr, write, false)

			case kBranch:
				mach.ReplayBranch(pay&1 != 0)

			case kBlock:
				if cur == nil || pay >= uint64(len(cur.Blocks)) {
					return fmt.Errorf("%w: block %d out of range", ErrMalformed, pay)
				}
				enterBlock(cur.Blocks[pay], 0, 0)

			case kEnter:
				if pay >= uint64(prog.NumMethods()) {
					return fmt.Errorf("%w: method %d out of range", ErrMalformed, pay)
				}
				enterMethod(program.MethodID(pay), 0, 0)
				if check && mach.Instructions() != start+batchSum {
					return ErrDiverged
				}

			case kExit:
				if len(frames) == 0 {
					return fmt.Errorf("%w: exit with empty frame stack", ErrMalformed)
				}
				f := frames[len(frames)-1]
				frames = frames[:len(frames)-1]
				ids = ids[:len(ids)-1]
				aos.ReplayMethodExit(f.m.ID, mach.Instructions()-f.entry)
				if len(frames) > 0 {
					cur = frames[len(frames)-1].m
				} else {
					cur = nil
				}
				if check && mach.Instructions() != start+batchSum {
					return ErrDiverged
				}

			case kHalt:
				// Unwind all in-flight frames innermost-first at one
				// instruction count, like vm.Engine's halt path.
				now := mach.Instructions()
				for i := len(frames) - 1; i >= 0; i-- {
					aos.ReplayMethodExit(frames[i].m.ID, now-frames[i].entry)
				}
				frames = frames[:0]
				ids = ids[:0]
				cur = nil
				if check && mach.Instructions() != start+batchSum {
					return ErrDiverged
				}

			case kExt:
				switch pay {
				case extEndHalted, extEndBudget:
					return nil

				case extBlockMasks, extEnterMasks:
					v, n := binary.Uvarint(buf[pos:])
					if n <= 0 {
						return fmt.Errorf("%w: bad masked-entry operand", ErrMalformed)
					}
					pos += n
					tlbMask, n := binary.Uvarint(buf[pos:])
					if n <= 0 {
						return fmt.Errorf("%w: bad I-TLB mask", ErrMalformed)
					}
					pos += n
					missMask, n := binary.Uvarint(buf[pos:])
					if n <= 0 {
						return fmt.Errorf("%w: bad L1I mask", ErrMalformed)
					}
					pos += n
					if pay == extBlockMasks {
						if cur == nil || v >= uint64(len(cur.Blocks)) {
							return fmt.Errorf("%w: block %d out of range", ErrMalformed, v)
						}
						enterBlock(cur.Blocks[v], tlbMask, missMask)
						break
					}
					if v >= uint64(prog.NumMethods()) {
						return fmt.Errorf("%w: method %d out of range", ErrMalformed, v)
					}
					enterMethod(program.MethodID(v), tlbMask, missMask)
					if check && mach.Instructions() != start+batchSum {
						return ErrDiverged
					}

				case extDataTLB:
					w, n := binary.Uvarint(buf[pos:])
					if n <= 0 {
						return fmt.Errorf("%w: bad data flags", ErrMalformed)
					}
					pos += n
					delta, n := binary.Uvarint(buf[pos:])
					if n <= 0 {
						return fmt.Errorf("%w: bad data delta", ErrMalformed)
					}
					pos += n
					addr := uint64(int64(prevAddr) + unzigzag(delta))
					prevAddr = addr
					mach.ReplayData(addr, w&1 != 0, true)

				default:
					return fmt.Errorf("%w: unknown extended event %d", ErrMalformed, pay)
				}
			}
		}
	}
	return fmt.Errorf("%w: missing end marker", ErrMalformed)
}
