package rtrace

import (
	"errors"
	"testing"

	"acedo/internal/machine"
	"acedo/internal/vm"
	"acedo/internal/workload"
)

// testEnv builds a minimal live environment for replay error-path
// tests (the bit-exactness of successful replays is pinned end-to-end
// by the experiment package's differential tests).
func testEnv(t *testing.T) Env {
	t.Helper()
	spec, ok := workload.ByName("jess")
	if !ok {
		t.Fatal("no jess benchmark")
	}
	prog, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	mach, err := machine.New(machine.PaperConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	return Env{Prog: prog, Mach: mach, AOS: vm.NewAOS(vm.DefaultParams(), mach, prog)}
}

func TestRecorderCountsAndSeals(t *testing.T) {
	r := NewRecorder()
	r.RecordEnter(0, 1, 1, true) // cold entry: extended form
	r.RecordBatch(5)
	r.RecordData(100, false, true) // D-TLB miss: extended form
	r.RecordData(101, true, false) // warm, small delta: 1 byte
	r.RecordBranch(true)
	r.RecordBlock(1, 0, 0, true) // warm block: 1 byte
	r.RecordExit()
	r.RecordHalt()
	tr, err := r.Finish(true)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Events() != 8 {
		t.Errorf("events = %d, want 8", tr.Events())
	}
	if tr.Truncated() {
		t.Error("halted trace marked truncated")
	}
	if tr.Size() == 0 || tr.Size() > 64 {
		t.Errorf("size = %d, want small and non-zero", tr.Size())
	}
}

func TestTruncatedFlag(t *testing.T) {
	r := NewRecorder()
	r.RecordBatch(1)
	tr, err := r.Finish(false)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Truncated() {
		t.Error("budget-stopped trace not marked truncated")
	}
}

func TestOversizedBlockInvalidatesRecording(t *testing.T) {
	r := NewRecorder()
	r.RecordBlock(0, 0, 0, false) // spans > 64 lines: unencodable
	if _, err := r.Finish(true); err == nil {
		t.Error("Finish accepted an unencodable recording")
	}
}

func TestChunkSealing(t *testing.T) {
	r := NewRecorder()
	// Large alternating deltas force multi-byte events; enough of them
	// force several chunks.
	const n = 40_000
	for i := 0; i < n; i++ {
		r.RecordData(uint64(i)*1_000_003, i%2 == 0, false)
		r.RecordBatch(1 << 20) // uvarint-escaped operand
	}
	tr, err := r.Finish(true)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Events() != 2*n {
		t.Errorf("events = %d, want %d", tr.Events(), 2*n)
	}
	if len(tr.chunks) < 2 {
		t.Errorf("chunks = %d, want several (size %d)", len(tr.chunks), tr.Size())
	}
	for i, c := range tr.chunks {
		if len(c) > chunkBytes {
			t.Errorf("chunk %d overflows: %d bytes", i, len(c))
		}
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	for _, d := range []int64{0, 1, -1, 2, -2, 1 << 40, -(1 << 40), 1<<63 - 1, -(1 << 62)} {
		if got := unzigzag(zigzag(d)); got != d {
			t.Errorf("unzigzag(zigzag(%d)) = %d", d, got)
		}
	}
}

func TestReplayMalformed(t *testing.T) {
	env := testEnv(t)
	cases := map[string]*Trace{
		"missing end marker": {chunks: [][]byte{{}}},
		"unknown ext":        {chunks: [][]byte{{kExt | 20<<3}}},
		"bad operand":        {chunks: [][]byte{{kBatch | payloadEscape<<3}}},
		"exit underflow":     {chunks: [][]byte{{kExit}}},
	}
	for name, tr := range cases {
		if err := tr.Replay(env); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: err = %v, want ErrMalformed", name, err)
		}
	}
}
