package rtrace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"acedo/internal/machine"
	"acedo/internal/program"
	"acedo/internal/vm"
	"acedo/internal/workload"
)

// fuzzProg is built once: the fuzz target needs a real program to
// resolve block indices against, but a fresh machine per input (the
// replay mutates it).
var fuzzProg = func() *program.Program {
	spec, ok := workload.ByName("jess")
	if !ok {
		panic("no jess benchmark")
	}
	prog, err := spec.Build()
	if err != nil {
		panic(err)
	}
	return prog
}()

func fuzzEnv(t *testing.T) Env {
	t.Helper()
	mach, err := machine.New(machine.PaperConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	return Env{Prog: fuzzProg, Mach: mach, AOS: vm.NewAOS(vm.DefaultParams(), mach, fuzzProg)}
}

// driveDirect re-decodes a byte stream into vm.Recorder calls on a
// fresh SummaryRecorder — summarize's decode loop re-cast as the
// engine callbacks the direct recorder would have received — and
// returns the direct-built trace. It fails exactly where summarize
// fails (bad operands, missing end marker, events the builder
// rejects), making the direct path fuzzable against the decode-once
// path on arbitrary streams, not just engine-generated ones.
func driveDirect(data []byte) (*Trace, error) {
	r := NewSummaryRecorder(fuzzProg, 0)
	var prevAddr uint64
	pos := 0
	uv := func() (uint64, bool) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, false
		}
		pos += n
		return v, true
	}
	for pos < len(data) {
		opByte := data[pos]
		pos++
		kind := opByte & 7
		pay := uint64(opByte >> 3)

		switch kind {
		case kBlock, kBatch, kEnter:
			if pay == payloadEscape {
				v, ok := uv()
				if !ok {
					return nil, fmt.Errorf("bad operand at pos %d", pos)
				}
				pay = v
			}
		}

		switch kind {
		case kBatch:
			r.RecordBatch(pay)

		case kData:
			write := pay & 1
			delta := pay >> 1
			if delta == 15 {
				v, ok := uv()
				if !ok {
					return nil, fmt.Errorf("bad data delta at pos %d", pos)
				}
				delta = v
			}
			addr := uint64(int64(prevAddr) + unzigzag(delta))
			prevAddr = addr
			r.RecordData(addr, write != 0, false)

		case kBranch:
			r.RecordBranch(pay&1 != 0)

		case kBlock:
			r.RecordBlock(int(pay), 0, 0, true)

		case kEnter:
			r.RecordEnter(program.MethodID(pay), 0, 0, true)

		case kExit:
			r.RecordExit()

		case kHalt:
			r.RecordHalt()

		case kExt:
			switch pay {
			case extEndHalted:
				return r.Finish(true)
			case extEndBudget:
				return r.Finish(false)

			case extBlockMasks, extEnterMasks:
				v, ok := uv()
				tlbMask, ok2 := uv()
				missMask, ok3 := uv()
				if !ok || !ok2 || !ok3 {
					return nil, fmt.Errorf("bad masked entry at pos %d", pos)
				}
				if pay == extBlockMasks {
					r.RecordBlock(int(v), tlbMask, missMask, true)
				} else {
					r.RecordEnter(program.MethodID(v), tlbMask, missMask, true)
				}

			case extDataTLB:
				w, ok := uv()
				delta, ok2 := uv()
				if !ok || !ok2 {
					return nil, fmt.Errorf("bad D-TLB data access at pos %d", pos)
				}
				addr := uint64(int64(prevAddr) + unzigzag(delta))
				prevAddr = addr
				r.RecordData(addr, w&1 != 0, true)

			default:
				return nil, fmt.Errorf("unknown extended event %d", pay)
			}
		}
	}
	return nil, fmt.Errorf("missing end marker")
}

// FuzzTraceDecode is a three-way differential: arbitrary bytes feed
// (1) the exact byte-replay oracle, (2) the decode-once summarizer,
// and (3) the direct summary recorder, driven with the recorder calls
// the decoded stream implies. The contract under hostile input: never
// panic, fail only with ErrMalformed or ErrDiverged, agree on
// accept/reject across all paths, build op-for-op identical summaries
// on both construction paths, and leave machines in bit-identical
// states on success. (Error classes may legitimately differ on
// invalid streams: the summarizer validates the whole stream before
// applying anything, so it can report a late encoding error where the
// exact path already stopped at an earlier divergence.)
func FuzzTraceDecode(f *testing.F) {
	// Seeds: an empty stream, lone end markers, a tiny valid stream, a
	// truncated stream, escaped operands, masked entries, and garbage.
	f.Add([]byte{}, false)
	f.Add([]byte{kExt | extEndHalted<<3}, false)
	f.Add([]byte{kExt | extEndBudget<<3}, true)
	f.Add([]byte{kEnter, kBatch | 5<<3, kData | 6<<3, kBranch, kExit, kExt | extEndHalted<<3}, false)
	f.Add([]byte{kEnter, kBatch | 5<<3, kHalt, kExt | extEndBudget<<3}, true)
	f.Add([]byte{kEnter, kBatch | payloadEscape<<3, 0x80, 0x08, kExt | extEndHalted<<3}, false)
	f.Add([]byte{kExt | extEnterMasks<<3, 0, 1, 1, kExt | extDataTLB<<3, 1, 4, kExt | extEndHalted<<3}, false)
	f.Add([]byte{kBlock | 3<<3, kExit, kExit}, false)
	f.Add([]byte{0xFF, 0xFE, 0xFD, 0x01, 0x02}, true)

	f.Fuzz(func(t *testing.T, data []byte, truncated bool) {
		mk := func() *Trace {
			return &Trace{
				chunks:    [][]byte{data},
				size:      len(data),
				truncated: truncated,
				sumState:  new(sumState),
			}
		}
		// A hostile uvarint can encode a near-2^64 retire batch, and
		// the sampler legitimately settles batch/interval deliveries —
		// hours of looping for a 12-byte input, on every engine
		// including the oracle. Decode once up front (the summarizer
		// mirrors the oracle's decoder, and totalBatch counts every
		// decoded batch — even one in an op a malformed tail never
		// commits — so it covers exactly the prefix the oracle would
		// execute) and skip streams whose batch total no real recording
		// could reach.
		// Construction-path differential (cheap — no machine): the
		// direct recorder must accept exactly the streams the
		// summarizer accepts and build the identical summary.
		s := summarize(mk(), fuzzProg)
		directTr, directErr := driveDirect(data)
		if (s.err == nil) != (directErr == nil) {
			t.Fatalf("construction disagreement: summarize err=%v, direct err=%v", s.err, directErr)
		}
		if directErr == nil {
			checkSameSummary(t, "direct-vs-summarize", s, directTr.summaryFor(fuzzProg))
		}

		if s.totalBatch() > 10_000_000 {
			t.Skip("absurd batch total")
		}
		okErr := func(label string, err error) {
			if err != nil && !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrDiverged) {
				t.Fatalf("%s: unexpected error class: %v", label, err)
			}
		}

		exact := fuzzEnv(t)
		errExact := mk().ReplayExact(exact)
		okErr("exact", errExact)

		sumEnv := fuzzEnv(t)
		errSum := mk().Replay(sumEnv)
		okErr("summarized", errSum)

		parEnv := fuzzEnv(t)
		errPar := mk().ReplayParallel(parEnv, 4)
		okErr("parallel", errPar)

		if (errExact == nil) != (errSum == nil) || (errExact == nil) != (errPar == nil) {
			t.Fatalf("accept/reject disagreement: exact=%v summarized=%v parallel=%v",
				errExact, errSum, errPar)
		}
		if errExact != nil {
			return
		}
		want := exact.Mach.Snapshot()
		if got := sumEnv.Mach.Snapshot(); !reflect.DeepEqual(want, got) {
			t.Fatalf("summarized snapshot differs:\n exact: %+v\n sum:   %+v", want, got)
		}
		if got := parEnv.Mach.Snapshot(); !reflect.DeepEqual(want, got) {
			t.Fatalf("parallel snapshot differs:\n exact: %+v\n par:   %+v", want, got)
		}
	})
}
