package rtrace

import (
	"errors"
	"reflect"
	"testing"

	"acedo/internal/machine"
	"acedo/internal/program"
	"acedo/internal/vm"
	"acedo/internal/workload"
)

// fuzzProg is built once: the fuzz target needs a real program to
// resolve block indices against, but a fresh machine per input (the
// replay mutates it).
var fuzzProg = func() *program.Program {
	spec, ok := workload.ByName("jess")
	if !ok {
		panic("no jess benchmark")
	}
	prog, err := spec.Build()
	if err != nil {
		panic(err)
	}
	return prog
}()

func fuzzEnv(t *testing.T) Env {
	t.Helper()
	mach, err := machine.New(machine.PaperConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	return Env{Prog: fuzzProg, Mach: mach, AOS: vm.NewAOS(vm.DefaultParams(), mach, fuzzProg)}
}

// FuzzTraceDecode feeds arbitrary bytes to both replay engines as a
// single-chunk trace. The contract under hostile input: never panic,
// fail only with ErrMalformed or ErrDiverged, agree with the oracle on
// success/failure, and — when both paths accept the stream — leave
// machines in bit-identical states. (Error classes may legitimately
// differ on invalid streams: the summarizer validates the whole stream
// before applying anything, so it can report a late encoding error
// where the exact path already stopped at an earlier divergence.)
func FuzzTraceDecode(f *testing.F) {
	// Seeds: an empty stream, lone end markers, a tiny valid stream, a
	// truncated stream, escaped operands, masked entries, and garbage.
	f.Add([]byte{}, false)
	f.Add([]byte{kExt | extEndHalted<<3}, false)
	f.Add([]byte{kExt | extEndBudget<<3}, true)
	f.Add([]byte{kEnter, kBatch | 5<<3, kData | 6<<3, kBranch, kExit, kExt | extEndHalted<<3}, false)
	f.Add([]byte{kEnter, kBatch | 5<<3, kHalt, kExt | extEndBudget<<3}, true)
	f.Add([]byte{kEnter, kBatch | payloadEscape<<3, 0x80, 0x08, kExt | extEndHalted<<3}, false)
	f.Add([]byte{kExt | extEnterMasks<<3, 0, 1, 1, kExt | extDataTLB<<3, 1, 4, kExt | extEndHalted<<3}, false)
	f.Add([]byte{kBlock | 3<<3, kExit, kExit}, false)
	f.Add([]byte{0xFF, 0xFE, 0xFD, 0x01, 0x02}, true)

	f.Fuzz(func(t *testing.T, data []byte, truncated bool) {
		mk := func() *Trace {
			return &Trace{
				chunks:    [][]byte{data},
				size:      len(data),
				truncated: truncated,
				sumState:  new(sumState),
			}
		}
		// A hostile uvarint can encode a near-2^64 retire batch, and
		// the sampler legitimately settles batch/interval deliveries —
		// hours of looping for a 12-byte input, on every engine
		// including the oracle. Decode once up front (the summarizer
		// mirrors the oracle's decoder, so its per-op totals cover
		// exactly the prefix the oracle would execute) and skip streams
		// whose batch total no real recording could reach.
		if s := summarize(mk(), fuzzProg); s != nil && s.totalBatch() > 10_000_000 {
			t.Skip("absurd batch total")
		}
		okErr := func(label string, err error) {
			if err != nil && !errors.Is(err, ErrMalformed) && !errors.Is(err, ErrDiverged) {
				t.Fatalf("%s: unexpected error class: %v", label, err)
			}
		}

		exact := fuzzEnv(t)
		errExact := mk().ReplayExact(exact)
		okErr("exact", errExact)

		sumEnv := fuzzEnv(t)
		errSum := mk().Replay(sumEnv)
		okErr("summarized", errSum)

		parEnv := fuzzEnv(t)
		errPar := mk().ReplayParallel(parEnv, 4)
		okErr("parallel", errPar)

		if (errExact == nil) != (errSum == nil) || (errExact == nil) != (errPar == nil) {
			t.Fatalf("accept/reject disagreement: exact=%v summarized=%v parallel=%v",
				errExact, errSum, errPar)
		}
		if errExact != nil {
			return
		}
		want := exact.Mach.Snapshot()
		if got := sumEnv.Mach.Snapshot(); !reflect.DeepEqual(want, got) {
			t.Fatalf("summarized snapshot differs:\n exact: %+v\n sum:   %+v", want, got)
		}
		if got := parEnv.Mach.Snapshot(); !reflect.DeepEqual(want, got) {
			t.Fatalf("parallel snapshot differs:\n exact: %+v\n par:   %+v", want, got)
		}
	})
}
