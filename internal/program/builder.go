package program

import (
	"fmt"

	"acedo/internal/isa"
)

// Builder assembles a Program incrementally. Typical use:
//
//	b := program.NewBuilder("demo")
//	m := b.NewMethod("main")
//	blk := m.NewBlock()
//	blk.Const(1, 42)
//	blk.Halt()
//	b.SetEntry(m.ID())
//	p, err := b.Build()
//
// The builder performs no validation itself; Build seals the program,
// which validates everything at once.
type Builder struct {
	prog *Program
}

// NewBuilder creates a builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{prog: &Program{Name: name}}
}

// SetMemWords declares the data memory size in words.
func (b *Builder) SetMemWords(n int) { b.prog.MemWords = n }

// SetEntry declares the entry method.
func (b *Builder) SetEntry(id MethodID) { b.prog.Entry = id }

// NumMethods returns the number of methods declared so far.
func (b *Builder) NumMethods() int { return len(b.prog.Methods) }

// NewMethod declares a new method and returns its builder.
func (b *Builder) NewMethod(name string) *MethodBuilder {
	m := &Method{ID: MethodID(len(b.prog.Methods)), Name: name}
	b.prog.Methods = append(b.prog.Methods, m)
	return &MethodBuilder{m: m}
}

// Build seals and returns the program. The builder must not be used
// after Build.
func (b *Builder) Build() (*Program, error) {
	if err := b.prog.Seal(); err != nil {
		return nil, fmt.Errorf("program build: %w", err)
	}
	return b.prog, nil
}

// MustBuild is Build that panics on error, for generators whose
// programs are constructed from checked parameters.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// MethodBuilder assembles one method's blocks.
type MethodBuilder struct {
	m *Method
}

// ID returns the method's ID, usable as a call target immediately.
func (mb *MethodBuilder) ID() MethodID { return mb.m.ID }

// Name returns the method's name.
func (mb *MethodBuilder) Name() string { return mb.m.Name }

// NewBlock appends a new empty basic block and returns its builder.
// Blocks execute in append order unless branched over.
func (mb *MethodBuilder) NewBlock() *BlockBuilder {
	blk := &Block{Index: len(mb.m.Blocks)}
	mb.m.Blocks = append(mb.m.Blocks, blk)
	return &BlockBuilder{b: blk}
}

// BlockBuilder appends instructions to one basic block. Each emit
// method returns the builder for chaining.
type BlockBuilder struct {
	b *Block
}

// Index returns the block's index, usable as a branch target.
func (bb *BlockBuilder) Index() int { return bb.b.Index }

// Emit appends a raw instruction.
func (bb *BlockBuilder) Emit(in isa.Instr) *BlockBuilder {
	bb.b.Instrs = append(bb.b.Instrs, in)
	return bb
}

// Len returns the number of instructions emitted so far.
func (bb *BlockBuilder) Len() int { return len(bb.b.Instrs) }

// Nop emits a no-op (useful for padding method size).
func (bb *BlockBuilder) Nop() *BlockBuilder {
	return bb.Emit(isa.Instr{Op: isa.OpNop})
}

// Const emits r[a] = imm.
func (bb *BlockBuilder) Const(a uint8, imm int64) *BlockBuilder {
	return bb.Emit(isa.Instr{Op: isa.OpConst, A: a, Imm: imm})
}

// Add emits r[a] = r[x] + r[y].
func (bb *BlockBuilder) Add(a, x, y uint8) *BlockBuilder {
	return bb.Emit(isa.Instr{Op: isa.OpAdd, A: a, B: x, C: y})
}

// Sub emits r[a] = r[x] - r[y].
func (bb *BlockBuilder) Sub(a, x, y uint8) *BlockBuilder {
	return bb.Emit(isa.Instr{Op: isa.OpSub, A: a, B: x, C: y})
}

// Mul emits r[a] = r[x] * r[y].
func (bb *BlockBuilder) Mul(a, x, y uint8) *BlockBuilder {
	return bb.Emit(isa.Instr{Op: isa.OpMul, A: a, B: x, C: y})
}

// Xor emits r[a] = r[x] ^ r[y].
func (bb *BlockBuilder) Xor(a, x, y uint8) *BlockBuilder {
	return bb.Emit(isa.Instr{Op: isa.OpXor, A: a, B: x, C: y})
}

// AddI emits r[a] = r[x] + imm.
func (bb *BlockBuilder) AddI(a, x uint8, imm int64) *BlockBuilder {
	return bb.Emit(isa.Instr{Op: isa.OpAddI, A: a, B: x, Imm: imm})
}

// MulI emits r[a] = r[x] * imm.
func (bb *BlockBuilder) MulI(a, x uint8, imm int64) *BlockBuilder {
	return bb.Emit(isa.Instr{Op: isa.OpMulI, A: a, B: x, Imm: imm})
}

// AndI emits r[a] = r[x] & imm.
func (bb *BlockBuilder) AndI(a, x uint8, imm int64) *BlockBuilder {
	return bb.Emit(isa.Instr{Op: isa.OpAndI, A: a, B: x, Imm: imm})
}

// XorI emits r[a] = r[x] ^ imm.
func (bb *BlockBuilder) XorI(a, x uint8, imm int64) *BlockBuilder {
	return bb.Emit(isa.Instr{Op: isa.OpXorI, A: a, B: x, Imm: imm})
}

// ShrI emits r[a] = r[x] >> imm (logical).
func (bb *BlockBuilder) ShrI(a, x uint8, imm int64) *BlockBuilder {
	return bb.Emit(isa.Instr{Op: isa.OpShrI, A: a, B: x, Imm: imm})
}

// ShlI emits r[a] = r[x] << imm.
func (bb *BlockBuilder) ShlI(a, x uint8, imm int64) *BlockBuilder {
	return bb.Emit(isa.Instr{Op: isa.OpShlI, A: a, B: x, Imm: imm})
}

// CmpLt emits r[a] = (r[x] < r[y]).
func (bb *BlockBuilder) CmpLt(a, x, y uint8) *BlockBuilder {
	return bb.Emit(isa.Instr{Op: isa.OpCmpLt, A: a, B: x, C: y})
}

// CmpEq emits r[a] = (r[x] == r[y]).
func (bb *BlockBuilder) CmpEq(a, x, y uint8) *BlockBuilder {
	return bb.Emit(isa.Instr{Op: isa.OpCmpEq, A: a, B: x, C: y})
}

// Load emits r[a] = mem[r[base]+off].
func (bb *BlockBuilder) Load(a, base uint8, off int64) *BlockBuilder {
	return bb.Emit(isa.Instr{Op: isa.OpLoad, A: a, B: base, Imm: off})
}

// Store emits mem[r[base]+off] = r[a].
func (bb *BlockBuilder) Store(a, base uint8, off int64) *BlockBuilder {
	return bb.Emit(isa.Instr{Op: isa.OpStore, A: a, B: base, Imm: off})
}

// Br emits a branch to block target when r[a] != 0.
func (bb *BlockBuilder) Br(a uint8, target int) *BlockBuilder {
	return bb.Emit(isa.Instr{Op: isa.OpBr, A: a, Imm: int64(target)})
}

// BrZ emits a branch to block target when r[a] == 0.
func (bb *BlockBuilder) BrZ(a uint8, target int) *BlockBuilder {
	return bb.Emit(isa.Instr{Op: isa.OpBrZ, A: a, Imm: int64(target)})
}

// Jmp emits an unconditional branch to block target.
func (bb *BlockBuilder) Jmp(target int) *BlockBuilder {
	return bb.Emit(isa.Instr{Op: isa.OpJmp, Imm: int64(target)})
}

// Call emits r[a] = call m(id). Arguments travel in r0..r3.
func (bb *BlockBuilder) Call(a uint8, id MethodID) *BlockBuilder {
	return bb.Emit(isa.Instr{Op: isa.OpCall, A: a, Imm: int64(id)})
}

// CallR emits r[a] = call (r[x]): indirect call through a register.
func (bb *BlockBuilder) CallR(a, x uint8) *BlockBuilder {
	return bb.Emit(isa.Instr{Op: isa.OpCallR, A: a, B: x})
}

// Ret emits a return of r[a].
func (bb *BlockBuilder) Ret(a uint8) *BlockBuilder {
	return bb.Emit(isa.Instr{Op: isa.OpRet, A: a})
}

// Halt emits a machine halt.
func (bb *BlockBuilder) Halt() *BlockBuilder {
	return bb.Emit(isa.Instr{Op: isa.OpHalt})
}
