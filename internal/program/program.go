// Package program represents executable programs for the simulated
// machine: methods made of basic blocks, plus a builder API that the
// workload generators use to assemble them and a validator that checks
// structural well-formedness before execution.
package program

import (
	"fmt"

	"acedo/internal/isa"
)

// MethodID names a method within a program. IDs are dense, assigned in
// creation order, and used directly as call targets.
type MethodID int

// Block is a basic block: a straight-line instruction sequence that is
// entered only at its first instruction and left only at its last.
type Block struct {
	// Index is the block's position within its method; branch
	// immediates name blocks by this index.
	Index int
	// Instrs is the instruction sequence. The last instruction of
	// every block except the method's last must be a terminator or
	// the block falls through.
	Instrs []isa.Instr
	// PC is the global address of the block's first instruction,
	// assigned by Program.Seal. Instruction i of the block has
	// address PC+i. Used by the branch predictor, the BBV
	// accumulator and the I-cache.
	PC uint64

	// Ops is the pre-decoded micro-op stream, one Micro per
	// instruction, computed by Seal. The engine's block-batched fast
	// path dispatches on this dense representation (operands and run
	// lengths in one cache line-friendly struct) instead of
	// re-reading the encoded Instrs.
	Ops []Micro

	// FirstLine and LastLine are the byte addresses of the first and
	// last L1I cache lines the block's instructions occupy, computed
	// by Seal so machine.Fetch does not re-derive them on every
	// block entry.
	FirstLine, LastLine uint64
}

// Micro is one pre-decoded micro-op. It mirrors isa.Instr's operand
// fields and adds Run: the length of the maximal straight-line run of
// simple ops (isa.Opcode.IsSimple) starting at this instruction, or 0
// when the op itself is not simple. The engine issues a whole run with
// one machine.IssueBatch call and one sampler settlement.
type Micro struct {
	Op      isa.Opcode
	A, B, C uint8
	Run     int32
	Imm     int64
}

// Method is a named, callable unit. Control enters at block 0 and
// leaves via OpRet (or OpHalt in the entry method).
type Method struct {
	ID     MethodID
	Name   string
	Blocks []*Block

	// StaticInstrs is the total instruction count across blocks,
	// computed by Seal.
	StaticInstrs int
}

// Block returns the block at index i.
func (m *Method) Block(i int) *Block { return m.Blocks[i] }

// Program is a sealed collection of methods plus an initial data
// memory image. The method with ID Entry is where execution starts.
type Program struct {
	Name    string
	Methods []*Method
	Entry   MethodID

	// MemWords is the size of the data memory in words. The memory
	// image starts zeroed; generators that need initialized data
	// emit initialization code (so initialization traffic is real).
	MemWords int

	// TotalStaticInstrs is the program-wide static instruction
	// count, computed by Seal.
	TotalStaticInstrs int

	sealed bool
}

// Method returns the method with the given ID, or nil if out of range.
func (p *Program) Method(id MethodID) *Method {
	if int(id) < 0 || int(id) >= len(p.Methods) {
		return nil
	}
	return p.Methods[id]
}

// NumMethods returns the number of methods in the program.
func (p *Program) NumMethods() int { return len(p.Methods) }

// Sealed reports whether Seal has completed on this program.
func (p *Program) Sealed() bool { return p.sealed }

// Seal assigns global PCs to every block, computes static instruction
// counts, pre-decodes every block (micro-op stream, straight-line run
// lengths, I-cache line range), and validates the whole program. After
// Seal the program is immutable and runnable. Seal is idempotent.
func (p *Program) Seal() error {
	if p.sealed {
		return nil
	}
	var pc uint64
	p.TotalStaticInstrs = 0
	for _, m := range p.Methods {
		m.StaticInstrs = 0
		for _, b := range m.Blocks {
			b.PC = pc
			pc += uint64(len(b.Instrs))
			m.StaticInstrs += len(b.Instrs)
			b.decode()
		}
		p.TotalStaticInstrs += m.StaticInstrs
	}
	if err := p.validate(); err != nil {
		return err
	}
	p.sealed = true
	return nil
}

// decode computes the block's sealed fast-path annotations: the
// micro-op stream with straight-line run lengths and the absolute
// L1I line range. Must run after the block's PC is assigned.
func (b *Block) decode() {
	n := len(b.Instrs)
	b.Ops = make([]Micro, n)
	for i, in := range b.Instrs {
		b.Ops[i] = Micro{Op: in.Op, A: in.A, B: in.B, C: in.C, Imm: in.Imm}
	}
	// Run lengths, back to front: a simple op extends the run that
	// starts at its successor.
	for i := n - 1; i >= 0; i-- {
		if !b.Ops[i].Op.IsSimple() {
			continue
		}
		b.Ops[i].Run = 1
		if i+1 < n {
			b.Ops[i].Run += b.Ops[i+1].Run
		}
	}
	span := n
	if span < 1 {
		span = 1
	}
	b.FirstLine = (isa.IBase + b.PC*isa.InstrBytes) &^ (isa.ILineBytes - 1)
	b.LastLine = (isa.IBase + (b.PC+uint64(span)-1)*isa.InstrBytes) &^ (isa.ILineBytes - 1)
}

// validate checks structural well-formedness: every instruction valid,
// every branch target in range, every call target a real method, every
// block properly terminated, the entry method present, and memory
// accesses plausibly bounded (dynamic bounds are enforced at runtime).
func (p *Program) validate() error {
	if len(p.Methods) == 0 {
		return fmt.Errorf("program %q: no methods", p.Name)
	}
	if p.Method(p.Entry) == nil {
		return fmt.Errorf("program %q: entry method %d out of range", p.Name, p.Entry)
	}
	if p.MemWords < 0 {
		return fmt.Errorf("program %q: negative memory size %d", p.Name, p.MemWords)
	}
	for mi, m := range p.Methods {
		if m.ID != MethodID(mi) {
			return fmt.Errorf("program %q: method %q has ID %d at position %d", p.Name, m.Name, m.ID, mi)
		}
		if err := p.validateMethod(m); err != nil {
			return fmt.Errorf("program %q: method %q: %w", p.Name, m.Name, err)
		}
	}
	return nil
}

func (p *Program) validateMethod(m *Method) error {
	if len(m.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	for bi, b := range m.Blocks {
		if b.Index != bi {
			return fmt.Errorf("block at position %d has index %d", bi, b.Index)
		}
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block %d: empty", bi)
		}
		for ii, in := range b.Instrs {
			if err := in.Validate(); err != nil {
				return fmt.Errorf("block %d instr %d: %w", bi, ii, err)
			}
			if in.Op.IsTerminator() && ii != len(b.Instrs)-1 {
				return fmt.Errorf("block %d instr %d: terminator %s not at block end", bi, ii, in.Op)
			}
			switch in.Op {
			case isa.OpBr, isa.OpBrZ, isa.OpJmp:
				if int(in.Imm) >= len(m.Blocks) {
					return fmt.Errorf("block %d instr %d: branch target @%d out of range (%d blocks)",
						bi, ii, in.Imm, len(m.Blocks))
				}
			case isa.OpCall:
				if p.Method(MethodID(in.Imm)) == nil {
					return fmt.Errorf("block %d instr %d: call target m%d does not exist", bi, ii, in.Imm)
				}
			case isa.OpHalt:
				if m.ID != p.Entry {
					return fmt.Errorf("block %d instr %d: halt outside entry method", bi, ii)
				}
			}
		}
		last := b.Instrs[len(b.Instrs)-1].Op
		fallsThrough := !last.IsTerminator() || last.IsConditional()
		if fallsThrough && bi == len(m.Blocks)-1 {
			return fmt.Errorf("block %d: falls off the end of the method", bi)
		}
	}
	return nil
}

// Disassemble renders the method as text, one instruction per line,
// for debugging and golden tests.
func (m *Method) Disassemble() string {
	s := fmt.Sprintf("method m%d %q:\n", m.ID, m.Name)
	for _, b := range m.Blocks {
		s += fmt.Sprintf("  @%d:\n", b.Index)
		for i, in := range b.Instrs {
			s += fmt.Sprintf("    %4d  %s\n", b.PC+uint64(i), in)
		}
	}
	return s
}
