// Package program represents executable programs for the simulated
// machine: methods made of basic blocks, plus a builder API that the
// workload generators use to assemble them and a validator that checks
// structural well-formedness before execution.
package program

import (
	"fmt"

	"acedo/internal/isa"
)

// MethodID names a method within a program. IDs are dense, assigned in
// creation order, and used directly as call targets.
type MethodID int

// Block is a basic block: a straight-line instruction sequence that is
// entered only at its first instruction and left only at its last.
type Block struct {
	// Index is the block's position within its method; branch
	// immediates name blocks by this index.
	Index int
	// Instrs is the instruction sequence. The last instruction of
	// every block except the method's last must be a terminator or
	// the block falls through.
	Instrs []isa.Instr
	// PC is the global address of the block's first instruction,
	// assigned by Program.Seal. Instruction i of the block has
	// address PC+i. Used by the branch predictor, the BBV
	// accumulator and the I-cache.
	PC uint64
}

// Method is a named, callable unit. Control enters at block 0 and
// leaves via OpRet (or OpHalt in the entry method).
type Method struct {
	ID     MethodID
	Name   string
	Blocks []*Block

	// StaticInstrs is the total instruction count across blocks,
	// computed by Seal.
	StaticInstrs int
}

// Block returns the block at index i.
func (m *Method) Block(i int) *Block { return m.Blocks[i] }

// Program is a sealed collection of methods plus an initial data
// memory image. The method with ID Entry is where execution starts.
type Program struct {
	Name    string
	Methods []*Method
	Entry   MethodID

	// MemWords is the size of the data memory in words. The memory
	// image starts zeroed; generators that need initialized data
	// emit initialization code (so initialization traffic is real).
	MemWords int

	// TotalStaticInstrs is the program-wide static instruction
	// count, computed by Seal.
	TotalStaticInstrs int

	sealed bool
}

// Method returns the method with the given ID, or nil if out of range.
func (p *Program) Method(id MethodID) *Method {
	if int(id) < 0 || int(id) >= len(p.Methods) {
		return nil
	}
	return p.Methods[id]
}

// NumMethods returns the number of methods in the program.
func (p *Program) NumMethods() int { return len(p.Methods) }

// Sealed reports whether Seal has completed on this program.
func (p *Program) Sealed() bool { return p.sealed }

// Seal assigns global PCs to every block, computes static instruction
// counts, and validates the whole program. After Seal the program is
// immutable and runnable. Seal is idempotent.
func (p *Program) Seal() error {
	if p.sealed {
		return nil
	}
	var pc uint64
	p.TotalStaticInstrs = 0
	for _, m := range p.Methods {
		m.StaticInstrs = 0
		for _, b := range m.Blocks {
			b.PC = pc
			pc += uint64(len(b.Instrs))
			m.StaticInstrs += len(b.Instrs)
		}
		p.TotalStaticInstrs += m.StaticInstrs
	}
	if err := p.validate(); err != nil {
		return err
	}
	p.sealed = true
	return nil
}

// validate checks structural well-formedness: every instruction valid,
// every branch target in range, every call target a real method, every
// block properly terminated, the entry method present, and memory
// accesses plausibly bounded (dynamic bounds are enforced at runtime).
func (p *Program) validate() error {
	if len(p.Methods) == 0 {
		return fmt.Errorf("program %q: no methods", p.Name)
	}
	if p.Method(p.Entry) == nil {
		return fmt.Errorf("program %q: entry method %d out of range", p.Name, p.Entry)
	}
	if p.MemWords < 0 {
		return fmt.Errorf("program %q: negative memory size %d", p.Name, p.MemWords)
	}
	for mi, m := range p.Methods {
		if m.ID != MethodID(mi) {
			return fmt.Errorf("program %q: method %q has ID %d at position %d", p.Name, m.Name, m.ID, mi)
		}
		if err := p.validateMethod(m); err != nil {
			return fmt.Errorf("program %q: method %q: %w", p.Name, m.Name, err)
		}
	}
	return nil
}

func (p *Program) validateMethod(m *Method) error {
	if len(m.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	for bi, b := range m.Blocks {
		if b.Index != bi {
			return fmt.Errorf("block at position %d has index %d", bi, b.Index)
		}
		if len(b.Instrs) == 0 {
			return fmt.Errorf("block %d: empty", bi)
		}
		for ii, in := range b.Instrs {
			if err := in.Validate(); err != nil {
				return fmt.Errorf("block %d instr %d: %w", bi, ii, err)
			}
			if in.Op.IsTerminator() && ii != len(b.Instrs)-1 {
				return fmt.Errorf("block %d instr %d: terminator %s not at block end", bi, ii, in.Op)
			}
			switch in.Op {
			case isa.OpBr, isa.OpBrZ, isa.OpJmp:
				if int(in.Imm) >= len(m.Blocks) {
					return fmt.Errorf("block %d instr %d: branch target @%d out of range (%d blocks)",
						bi, ii, in.Imm, len(m.Blocks))
				}
			case isa.OpCall:
				if p.Method(MethodID(in.Imm)) == nil {
					return fmt.Errorf("block %d instr %d: call target m%d does not exist", bi, ii, in.Imm)
				}
			case isa.OpHalt:
				if m.ID != p.Entry {
					return fmt.Errorf("block %d instr %d: halt outside entry method", bi, ii)
				}
			}
		}
		last := b.Instrs[len(b.Instrs)-1].Op
		fallsThrough := !last.IsTerminator() || last.IsConditional()
		if fallsThrough && bi == len(m.Blocks)-1 {
			return fmt.Errorf("block %d: falls off the end of the method", bi)
		}
	}
	return nil
}

// Disassemble renders the method as text, one instruction per line,
// for debugging and golden tests.
func (m *Method) Disassemble() string {
	s := fmt.Sprintf("method m%d %q:\n", m.ID, m.Name)
	for _, b := range m.Blocks {
		s += fmt.Sprintf("  @%d:\n", b.Index)
		for i, in := range b.Instrs {
			s += fmt.Sprintf("    %4d  %s\n", b.PC+uint64(i), in)
		}
	}
	return s
}
