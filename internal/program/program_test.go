package program

import (
	"strings"
	"testing"

	"acedo/internal/isa"
)

// buildMinimal returns a builder holding one valid main method.
func buildMinimal() *Builder {
	b := NewBuilder("t")
	m := b.NewMethod("main")
	m.NewBlock().Const(0, 1).Halt()
	b.SetEntry(m.ID())
	return b
}

func TestBuildMinimal(t *testing.T) {
	p, err := buildMinimal().Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if !p.Sealed() {
		t.Error("program not sealed after Build")
	}
	if p.NumMethods() != 1 {
		t.Errorf("NumMethods = %d, want 1", p.NumMethods())
	}
	if p.TotalStaticInstrs != 2 {
		t.Errorf("TotalStaticInstrs = %d, want 2", p.TotalStaticInstrs)
	}
}

func TestSealAssignsGlobalPCs(t *testing.T) {
	b := NewBuilder("t")
	m1 := b.NewMethod("main")
	m1.NewBlock().Nop().Nop().Halt()
	m2 := b.NewMethod("f")
	m2.NewBlock().Const(0, 1).Ret(0)
	b.SetEntry(m1.ID())
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := p.Methods[0].Blocks[0].PC; got != 0 {
		t.Errorf("first block PC = %d, want 0", got)
	}
	if got := p.Methods[1].Blocks[0].PC; got != 3 {
		t.Errorf("second method PC = %d, want 3", got)
	}
	if p.Methods[1].StaticInstrs != 2 {
		t.Errorf("method static instrs = %d, want 2", p.Methods[1].StaticInstrs)
	}
}

func TestSealIdempotent(t *testing.T) {
	p, err := buildMinimal().Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := p.Seal(); err != nil {
		t.Errorf("second Seal: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Builder
		want  string
	}{
		{"no methods", func() *Builder { return NewBuilder("t") }, "no methods"},
		{"empty block", func() *Builder {
			b := NewBuilder("t")
			m := b.NewMethod("main")
			m.NewBlock()
			b.SetEntry(m.ID())
			return b
		}, "empty"},
		{"no blocks", func() *Builder {
			b := NewBuilder("t")
			m := b.NewMethod("main")
			b.SetEntry(m.ID())
			return b
		}, "no blocks"},
		{"branch out of range", func() *Builder {
			b := NewBuilder("t")
			m := b.NewMethod("main")
			m.NewBlock().Jmp(5)
			b.SetEntry(m.ID())
			return b
		}, "out of range"},
		{"call to missing method", func() *Builder {
			b := NewBuilder("t")
			m := b.NewMethod("main")
			m.NewBlock().Call(0, 9).Halt()
			b.SetEntry(m.ID())
			return b
		}, "does not exist"},
		{"fallthrough off method end", func() *Builder {
			b := NewBuilder("t")
			m := b.NewMethod("main")
			m.NewBlock().Nop()
			b.SetEntry(m.ID())
			return b
		}, "falls off"},
		{"terminator mid-block", func() *Builder {
			b := NewBuilder("t")
			m := b.NewMethod("main")
			m.NewBlock().Halt().Nop()
			b.SetEntry(m.ID())
			return b
		}, "not at block end"},
		{"halt outside entry", func() *Builder {
			b := NewBuilder("t")
			m := b.NewMethod("main")
			m.NewBlock().Halt()
			f := b.NewMethod("f")
			f.NewBlock().Halt()
			b.SetEntry(m.ID())
			return b
		}, "halt outside entry"},
		{"negative memory", func() *Builder {
			b := buildMinimal()
			b.SetMemWords(-1)
			return b
		}, "negative memory"},
		{"bad entry", func() *Builder {
			b := buildMinimal()
			b.SetEntry(42)
			return b
		}, "entry method"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := c.build().Build()
			if err == nil {
				t.Fatal("Build succeeded, want error")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestConditionalBranchMayEndNonFinalBlock(t *testing.T) {
	b := NewBuilder("t")
	m := b.NewMethod("main")
	blk := m.NewBlock()
	blk.Const(1, 0).Br(1, 0) // falls through when r1 == 0
	m.NewBlock().Halt()
	b.SetEntry(m.ID())
	if _, err := b.Build(); err != nil {
		t.Fatalf("Build: %v", err)
	}
}

func TestConditionalBranchInFinalBlockRejected(t *testing.T) {
	b := NewBuilder("t")
	m := b.NewMethod("main")
	m.NewBlock().Br(1, 0)
	b.SetEntry(m.ID())
	if _, err := b.Build(); err == nil {
		t.Fatal("conditional branch ending the last block must be rejected (fallthrough)")
	}
}

func TestMethodLookup(t *testing.T) {
	p, err := buildMinimal().Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if p.Method(0) == nil {
		t.Error("Method(0) = nil")
	}
	if p.Method(-1) != nil || p.Method(1) != nil {
		t.Error("out-of-range Method lookup should return nil")
	}
}

func TestDisassembleContainsMnemonics(t *testing.T) {
	b := NewBuilder("t")
	m := b.NewMethod("main")
	m.NewBlock().Const(3, 42).Load(1, 3, 0).Halt()
	b.SetEntry(m.ID())
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	dis := p.Methods[0].Disassemble()
	for _, want := range []string{"const r3, 42", "load r1, [r3+0]", "halt"} {
		if !strings.Contains(dis, want) {
			t.Errorf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestBuilderEmitHelpersProduceValidOps(t *testing.T) {
	b := NewBuilder("t")
	callee := b.NewMethod("callee")
	callee.NewBlock().Ret(0)
	m := b.NewMethod("main")
	blk := m.NewBlock()
	blk.Const(1, 7).Add(2, 1, 1).Sub(3, 2, 1).Mul(4, 2, 3).Xor(5, 4, 1).
		AddI(6, 5, 1).MulI(7, 6, 2).AndI(8, 7, 0xff).XorI(9, 8, 1).
		ShrI(10, 9, 1).ShlI(11, 10, 2).CmpLt(12, 1, 2).CmpEq(13, 1, 1).
		Load(14, 1, 0).Store(14, 1, 0).Call(15, callee.ID()).Nop().Halt()
	b.SetEntry(m.ID())
	b.SetMemWords(64)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if p.Methods[1].StaticInstrs != 18 {
		t.Errorf("static instrs = %d, want 18", p.Methods[1].StaticInstrs)
	}
	// Spot-check one encoded instruction.
	in := p.Methods[1].Blocks[0].Instrs[13]
	if in.Op != isa.OpLoad || in.A != 14 || in.B != 1 {
		t.Errorf("unexpected encoding: %s", in)
	}
}

func TestMustBuildPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic on invalid program")
		}
	}()
	NewBuilder("t").MustBuild()
}
