// Package ace models the adaptive computing environment's hardware
// support (paper Section 3.4): each configurable unit (CU) has a
// control register whose value selects a fixed setting, a special
// instruction to write that register (modelled as the Request call),
// and a per-CU hardware counter holding the time of the last accepted
// reconfiguration. A request arriving before the CU's reconfiguration
// interval has elapsed is ignored without modifying the configuration,
// freeing the software framework from tracking minimum intervals.
package ace

import "fmt"

// Unit is one configurable hardware unit: a named list of settings
// (for the caches, sizes in bytes, ascending) plus the guard state.
// The apply callback performs the actual hardware change (cache resize,
// meter epoch switch, flush-cost charging).
type Unit struct {
	name     string
	settings []int

	current  int // index into settings
	interval uint64
	lastAt   uint64
	everSet  bool

	apply func(setting int, nowInstr uint64)

	// gate, when non-nil, can veto or defer otherwise-acceptable
	// requests (the fault-injection harness); pending holds a
	// deferred target index, -1 when none.
	gate    Gate
	pending int

	stats UnitStats
}

// GateOutcome is a Gate's verdict on one reconfiguration request.
type GateOutcome int

const (
	// GateAllow lets the request proceed normally.
	GateAllow GateOutcome = iota
	// GateReject drops the request without changing the unit.
	GateReject
	// GateDefer holds the request back; the unit re-issues it at
	// its next Request call (where the usual guards apply again).
	GateDefer
)

// Gate intercepts requests that passed the unit's own guards —
// the hardware hook the fault-injection harness attaches to. It must
// not call back into the Unit.
type Gate func(unit string, target int, nowInstr uint64) GateOutcome

// UnitStats counts reconfiguration requests.
type UnitStats struct {
	// Requests counts all Request calls.
	Requests uint64
	// Applied counts requests that changed the configuration.
	Applied uint64
	// Ignored counts requests rejected by the reconfiguration-
	// interval guard.
	Ignored uint64
	// Redundant counts requests for the already-active setting.
	Redundant uint64
	// Rejected and Deferred count requests vetoed or held back by
	// an installed Gate (zero without one).
	Rejected uint64
	Deferred uint64
}

// NewUnit constructs a configurable unit.
//
// settings lists the selectable values in ascending order; startIndex
// selects the initial one (applied immediately via apply, at time 0).
// interval is the reconfiguration interval in instructions. apply is
// invoked for every accepted change; it must not call back into the
// Unit.
func NewUnit(name string, settings []int, startIndex int, interval uint64, apply func(setting int, nowInstr uint64)) (*Unit, error) {
	if len(settings) == 0 {
		return nil, fmt.Errorf("ace: unit %s: no settings", name)
	}
	for i := 1; i < len(settings); i++ {
		if settings[i] <= settings[i-1] {
			return nil, fmt.Errorf("ace: unit %s: settings not strictly ascending", name)
		}
	}
	if startIndex < 0 || startIndex >= len(settings) {
		return nil, fmt.Errorf("ace: unit %s: start index %d out of range", name, startIndex)
	}
	if apply == nil {
		return nil, fmt.Errorf("ace: unit %s: nil apply callback", name)
	}
	u := &Unit{
		name:     name,
		settings: settings,
		current:  startIndex,
		interval: interval,
		apply:    apply,
		pending:  -1,
	}
	u.apply(settings[startIndex], 0)
	return u, nil
}

// MustNewUnit is NewUnit that panics on error.
func MustNewUnit(name string, settings []int, startIndex int, interval uint64, apply func(setting int, nowInstr uint64)) *Unit {
	u, err := NewUnit(name, settings, startIndex, interval, apply)
	if err != nil {
		panic(err)
	}
	return u
}

// Name returns the unit's name.
func (u *Unit) Name() string { return u.name }

// NumSettings returns the number of selectable settings.
func (u *Unit) NumSettings() int { return len(u.settings) }

// Settings returns a copy of the setting list.
func (u *Unit) Settings() []int {
	out := make([]int, len(u.settings))
	copy(out, u.settings)
	return out
}

// Setting returns the value of setting index i.
func (u *Unit) Setting(i int) int { return u.settings[i] }

// CurrentIndex returns the active setting's index.
func (u *Unit) CurrentIndex() int { return u.current }

// Current returns the active setting's value.
func (u *Unit) Current() int { return u.settings[u.current] }

// MaxIndex returns the index of the largest setting.
func (u *Unit) MaxIndex() int { return len(u.settings) - 1 }

// Interval returns the reconfiguration interval in instructions.
func (u *Unit) Interval() uint64 { return u.interval }

// Stats returns a copy of the request counters.
func (u *Unit) Stats() UnitStats { return u.stats }

// SetGate installs (or, with nil, removes) a request gate. Install
// before running; the gate observes only requests that survive the
// unit's own redundancy and interval guards.
func (u *Unit) SetGate(g Gate) { u.gate = g }

// Request asks the CU to switch to setting index i at instruction time
// nowInstr (the special configuration instruction). It returns true if
// the configuration changed. Requests for the active setting are
// redundant no-ops; requests arriving within the reconfiguration
// interval of the last accepted change are ignored by the hardware
// guard counter. An installed Gate can additionally reject or defer a
// request that passed both guards; a deferred request is re-issued
// (through the guards, but not the gate) at the next Request call.
func (u *Unit) Request(i int, nowInstr uint64) bool {
	u.stats.Requests++
	if p := u.pending; p >= 0 {
		u.pending = -1
		u.commit(p, nowInstr)
	}
	if i < 0 || i >= len(u.settings) {
		// A malformed register write selects nothing; treat as
		// ignored rather than panicking the "hardware".
		u.stats.Ignored++
		return false
	}
	if i == u.current {
		u.stats.Redundant++
		return false
	}
	if u.everSet && nowInstr-u.lastAt < u.interval {
		u.stats.Ignored++
		return false
	}
	if u.gate != nil {
		switch u.gate(u.name, i, nowInstr) {
		case GateReject:
			u.stats.Rejected++
			return false
		case GateDefer:
			u.stats.Deferred++
			u.pending = i
			return false
		}
	}
	u.doApply(i, nowInstr)
	return true
}

// commit re-issues a deferred request through the guards (but not the
// gate, so one fault cannot defer forever).
func (u *Unit) commit(i int, nowInstr uint64) {
	if i == u.current {
		return
	}
	if u.everSet && nowInstr-u.lastAt < u.interval {
		return
	}
	u.doApply(i, nowInstr)
}

func (u *Unit) doApply(i int, nowInstr uint64) {
	u.current = i
	u.lastAt = nowInstr
	u.everSet = true
	u.stats.Applied++
	u.apply(u.settings[i], nowInstr)
}

// Combinations enumerates every combinatorial configuration of the
// given units as setting-index vectors, in an order that tests larger
// settings first (the straightforward all-combinations tuning strategy
// of the temporal approaches, Section 2.3). The first element is the
// all-largest configuration.
func Combinations(units []*Unit) [][]int {
	if len(units) == 0 {
		return nil
	}
	total := 1
	for _, u := range units {
		total *= u.NumSettings()
	}
	out := make([][]int, 0, total)
	cur := make([]int, len(units))
	var rec func(d int)
	rec = func(d int) {
		if d == len(units) {
			v := make([]int, len(cur))
			copy(v, cur)
			out = append(out, v)
			return
		}
		for i := units[d].NumSettings() - 1; i >= 0; i-- {
			cur[d] = i
			rec(d + 1)
		}
	}
	rec(0)
	return out
}

// Descending enumerates a single unit's settings from largest to
// smallest as one-element index vectors — the decoupled per-CU
// configuration list the hotspot tuner walks.
func Descending(u *Unit) [][]int {
	out := make([][]int, 0, u.NumSettings())
	for i := u.NumSettings() - 1; i >= 0; i-- {
		out = append(out, []int{i})
	}
	return out
}
