package ace

import (
	"reflect"
	"testing"
)

func newTestUnit(t *testing.T, interval uint64) (*Unit, *[]int) {
	t.Helper()
	var applied []int
	u, err := NewUnit("u", []int{8, 16, 32, 64}, 3, interval, func(s int, _ uint64) {
		applied = append(applied, s)
	})
	if err != nil {
		t.Fatal(err)
	}
	return u, &applied
}

func TestNewUnitAppliesStartSetting(t *testing.T) {
	u, applied := newTestUnit(t, 100)
	if !reflect.DeepEqual(*applied, []int{64}) {
		t.Errorf("initial apply = %v, want [64]", *applied)
	}
	if u.Current() != 64 || u.CurrentIndex() != 3 || u.MaxIndex() != 3 {
		t.Errorf("initial state wrong: %d/%d", u.Current(), u.CurrentIndex())
	}
}

func TestNewUnitValidation(t *testing.T) {
	apply := func(int, uint64) {}
	cases := []struct {
		name     string
		settings []int
		start    int
		apply    func(int, uint64)
	}{
		{"empty settings", nil, 0, apply},
		{"not ascending", []int{16, 8}, 0, apply},
		{"duplicate", []int{8, 8}, 0, apply},
		{"start out of range", []int{8, 16}, 2, apply},
		{"nil apply", []int{8, 16}, 0, nil},
	}
	for _, c := range cases {
		if _, err := NewUnit("u", c.settings, c.start, 10, c.apply); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestRequestAppliesChange(t *testing.T) {
	u, applied := newTestUnit(t, 100)
	if !u.Request(0, 50) {
		t.Fatal("first change should be accepted")
	}
	if u.Current() != 8 {
		t.Errorf("Current = %d, want 8", u.Current())
	}
	if (*applied)[len(*applied)-1] != 8 {
		t.Error("apply callback not invoked with new setting")
	}
	st := u.Stats()
	if st.Requests != 1 || st.Applied != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRequestRedundantIsNoop(t *testing.T) {
	u, applied := newTestUnit(t, 100)
	before := len(*applied)
	if u.Request(3, 50) {
		t.Error("request for active setting should return false")
	}
	if len(*applied) != before {
		t.Error("redundant request must not invoke apply")
	}
	if u.Stats().Redundant != 1 {
		t.Errorf("stats = %+v", u.Stats())
	}
}

func TestGuardIgnoresEarlyRequests(t *testing.T) {
	u, _ := newTestUnit(t, 100)
	if !u.Request(0, 50) {
		t.Fatal("first change accepted")
	}
	if u.Request(1, 100) { // only 50 elapsed < 100
		t.Error("request within the reconfiguration interval must be ignored")
	}
	if u.Current() != 8 {
		t.Error("ignored request must not change the configuration")
	}
	if u.Stats().Ignored != 1 {
		t.Errorf("stats = %+v", u.Stats())
	}
	if !u.Request(1, 150) { // 100 elapsed
		t.Error("request after the interval should be accepted")
	}
}

func TestGuardNotArmedBeforeFirstChange(t *testing.T) {
	// The guard counter tracks the last reconfiguration; before any
	// change, a request at time 0 must be accepted.
	u, _ := newTestUnit(t, 1000)
	if !u.Request(0, 0) {
		t.Error("very first change should not be blocked by the guard")
	}
}

func TestRedundantRequestDoesNotResetGuard(t *testing.T) {
	u, _ := newTestUnit(t, 100)
	u.Request(0, 50)  // change at t=50
	u.Request(0, 120) // redundant; must not refresh the guard
	if !u.Request(1, 151) {
		t.Error("guard should measure from the last applied change")
	}
}

func TestRequestOutOfRangeIgnored(t *testing.T) {
	u, _ := newTestUnit(t, 100)
	if u.Request(-1, 500) || u.Request(4, 500) {
		t.Error("out-of-range settings must be ignored")
	}
	if u.Stats().Ignored != 2 {
		t.Errorf("stats = %+v", u.Stats())
	}
}

func TestSettingsAccessors(t *testing.T) {
	u, _ := newTestUnit(t, 42)
	if u.Name() != "u" || u.NumSettings() != 4 || u.Interval() != 42 {
		t.Error("accessors wrong")
	}
	if u.Setting(1) != 16 {
		t.Errorf("Setting(1) = %d", u.Setting(1))
	}
	s := u.Settings()
	s[0] = 999
	if u.Setting(0) == 999 {
		t.Error("Settings must return a copy")
	}
}

func TestCombinationsOrder(t *testing.T) {
	a := MustNewUnit("a", []int{1, 2}, 1, 0, func(int, uint64) {})
	b := MustNewUnit("b", []int{10, 20, 30}, 2, 0, func(int, uint64) {})
	got := Combinations([]*Unit{a, b})
	want := [][]int{
		{1, 2}, {1, 1}, {1, 0},
		{0, 2}, {0, 1}, {0, 0},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Combinations = %v, want %v", got, want)
	}
	if Combinations(nil) != nil {
		t.Error("Combinations(nil) should be nil")
	}
}

func TestCombinationsFirstIsAllLargest(t *testing.T) {
	a := MustNewUnit("a", []int{1, 2, 3, 4}, 0, 0, func(int, uint64) {})
	b := MustNewUnit("b", []int{1, 2, 3, 4}, 0, 0, func(int, uint64) {})
	combos := Combinations([]*Unit{a, b})
	if len(combos) != 16 {
		t.Fatalf("len = %d, want 16", len(combos))
	}
	if !reflect.DeepEqual(combos[0], []int{3, 3}) {
		t.Errorf("first combo = %v, want [3 3]", combos[0])
	}
}

func TestDescending(t *testing.T) {
	a := MustNewUnit("a", []int{1, 2, 3}, 0, 0, func(int, uint64) {})
	got := Descending(a)
	want := [][]int{{2}, {1}, {0}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Descending = %v, want %v", got, want)
	}
}
