package cpu

// Timing is the analytic cycle model for the simulated 4-wide
// out-of-order core. Rather than simulating every pipeline structure,
// it accumulates the first-order cycle components the paper's results
// depend on:
//
//	cycles = instructions / issue width
//	       + mispredictions × misprediction penalty
//	       + exposed memory stall cycles
//	       + reconfiguration flush cycles
//
// Miss penalties are multiplied by an exposure factor that stands in
// for the latency an out-of-order window cannot hide. The model is
// execution-driven: every component is fed by real simulated events.
type Timing struct {
	cfg TimingConfig

	// slots accumulates issue-slot occupancy in units of 1
	// instruction; cycles due to issue = slots / IssueWidth.
	slots uint64

	stallCycles   uint64 // memory + TLB stalls, already exposure-scaled
	branchCycles  uint64
	reconfCycles  uint64
	stallsL1      uint64 // L1 miss events charged
	stallsL2      uint64 // L2 miss events charged
	stallsTLB     uint64
	mispredicts   uint64
	reconfEvents  uint64
	reconfWriteBk uint64

	// windowMult scales exposed miss latency for the current
	// instruction-window size: a smaller window extracts less
	// memory-level parallelism, exposing more of each miss. 1.0 at
	// the full window.
	windowMult float64
}

// TimingConfig holds the core and memory latencies (paper Table 2).
type TimingConfig struct {
	IssueWidth int // instructions per cycle, 4

	MispredictPenalty uint64 // 3 cycles

	L2HitLatency  uint64 // charged on an L1 miss that hits in L2: 10
	MemLatency    uint64 // charged on an L2 miss: 100
	TLBMissCycles uint64 // 30

	// L2Exposure and MemExposure scale the raw penalties to model
	// the fraction of latency the out-of-order window cannot hide
	// given the 64-entry window's memory-level parallelism (cache
	// misses to independent lines overlap substantially).
	L2Exposure  float64 // 0.55
	MemExposure float64 // 0.45

	// WritebackCycles is the per-line cost of a reconfiguration
	// flush write-back; ResizeFixedCycles is charged once per
	// resize (control-register write, array settle).
	WritebackCycles   uint64
	ResizeFixedCycles uint64
}

// DefaultTimingConfig returns the paper's Table 2 latencies with the
// overlap model documented in DESIGN.md.
func DefaultTimingConfig() TimingConfig {
	return TimingConfig{
		IssueWidth:        4,
		MispredictPenalty: 3,
		L2HitLatency:      10,
		MemLatency:        100,
		TLBMissCycles:     30,
		L2Exposure:        0.55,
		MemExposure:       0.45,
		WritebackCycles:   4,
		ResizeFixedCycles: 100,
	}
}

// NewTiming constructs a timing model. Zero-valued config fields are
// replaced with defaults.
func NewTiming(cfg TimingConfig) *Timing {
	def := DefaultTimingConfig()
	if cfg.IssueWidth <= 0 {
		cfg.IssueWidth = def.IssueWidth
	}
	if cfg.L2Exposure <= 0 {
		cfg.L2Exposure = def.L2Exposure
	}
	if cfg.MemExposure <= 0 {
		cfg.MemExposure = def.MemExposure
	}
	return &Timing{cfg: cfg, windowMult: 1}
}

// SetWindow adjusts the instruction-window model: with `entries` of a
// `base`-entry window enabled, exposed miss latency scales by
// 1 + 0.8×(1 − entries/base) — a quarter-size window exposes ~60%
// more of each miss because fewer independent misses overlap.
func (t *Timing) SetWindow(entries, base int) {
	if base <= 0 || entries <= 0 || entries > base {
		t.windowMult = 1
		return
	}
	t.windowMult = 1 + 0.8*(1-float64(entries)/float64(base))
}

// WindowMult returns the current window exposure multiplier.
func (t *Timing) WindowMult() float64 { return t.windowMult }

// Config returns the timing configuration in use.
func (t *Timing) Config() TimingConfig { return t.cfg }

// Issue charges n instructions of issue bandwidth.
func (t *Timing) Issue(n uint64) { t.slots += n }

// Mispredict charges one branch misprediction.
func (t *Timing) Mispredict() {
	t.mispredicts++
	t.branchCycles += t.cfg.MispredictPenalty
}

// L1Miss charges an L1 miss that hit in L2.
func (t *Timing) L1Miss() {
	t.stallsL1++
	t.stallCycles += scale(t.cfg.L2HitLatency, t.cfg.L2Exposure*t.windowMult)
}

// L2Miss charges an L2 miss (memory access). The preceding L1 miss
// must be charged separately by the caller via L1Miss.
func (t *Timing) L2Miss() {
	t.stallsL2++
	t.stallCycles += scale(t.cfg.MemLatency, t.cfg.MemExposure*t.windowMult)
}

// TLBMiss charges one TLB miss.
func (t *Timing) TLBMiss() {
	t.stallsTLB++
	t.stallCycles += scale(t.cfg.TLBMissCycles, t.windowMult)
}

// MispredictN charges n branch mispredictions in one call. The
// per-event penalty is a constant, so the bulk charge equals n
// sequential Mispredict calls exactly. n == 0 returns immediately —
// the replay fast path calls the N-variants unconditionally.
func (t *Timing) MispredictN(n uint64) {
	if n == 0 {
		return
	}
	t.mispredicts += n
	t.branchCycles += n * t.cfg.MispredictPenalty
}

// L1MissN charges n L1 misses that hit in L2 in one call. The
// per-event exposed latency is a pure function of the configuration
// and the current window multiplier — both constant between
// reconfiguration boundaries — so the bulk charge is bit-exact with n
// sequential L1Miss calls.
func (t *Timing) L1MissN(n uint64) {
	if n == 0 {
		return
	}
	t.stallsL1 += n
	t.stallCycles += n * scale(t.cfg.L2HitLatency, t.cfg.L2Exposure*t.windowMult)
}

// L2MissN charges n L2 misses in one call (bit-exact with n L2Miss
// calls; see L1MissN).
func (t *Timing) L2MissN(n uint64) {
	if n == 0 {
		return
	}
	t.stallsL2 += n
	t.stallCycles += n * scale(t.cfg.MemLatency, t.cfg.MemExposure*t.windowMult)
}

// TLBMissN charges n TLB misses in one call (bit-exact with n TLBMiss
// calls; see L1MissN).
func (t *Timing) TLBMissN(n uint64) {
	if n == 0 {
		return
	}
	t.stallsTLB += n
	t.stallCycles += n * scale(t.cfg.TLBMissCycles, t.windowMult)
}

// Reconfigure charges one cache resize that flushed writebacks dirty
// lines.
func (t *Timing) Reconfigure(writebacks int) {
	t.reconfEvents++
	t.reconfWriteBk += uint64(writebacks)
	t.reconfCycles += t.cfg.ResizeFixedCycles + uint64(writebacks)*t.cfg.WritebackCycles
}

// ReconfigureStall charges extra drain cycles to the current resize —
// a transient hardware stall beyond the modelled flush cost (the
// fault-injection harness's resize point).
func (t *Timing) ReconfigureStall(cycles uint64) {
	t.reconfCycles += cycles
}

func scale(cycles uint64, factor float64) uint64 {
	return uint64(float64(cycles) * factor)
}

// Cycles returns the total cycle count so far.
func (t *Timing) Cycles() uint64 {
	issue := (t.slots + uint64(t.cfg.IssueWidth) - 1) / uint64(t.cfg.IssueWidth)
	return issue + t.stallCycles + t.branchCycles + t.reconfCycles
}

// Breakdown reports the cycle components for diagnostics.
type Breakdown struct {
	IssueCycles     uint64
	StallCycles     uint64
	BranchCycles    uint64
	ReconfCycles    uint64
	L1Misses        uint64
	L2Misses        uint64
	TLBMisses       uint64
	Mispredicts     uint64
	Reconfigs       uint64
	FlushWritebacks uint64
}

// Breakdown returns the current cycle components.
func (t *Timing) Breakdown() Breakdown {
	return Breakdown{
		IssueCycles:     (t.slots + uint64(t.cfg.IssueWidth) - 1) / uint64(t.cfg.IssueWidth),
		StallCycles:     t.stallCycles,
		BranchCycles:    t.branchCycles,
		ReconfCycles:    t.reconfCycles,
		L1Misses:        t.stallsL1,
		L2Misses:        t.stallsL2,
		TLBMisses:       t.stallsTLB,
		Mispredicts:     t.mispredicts,
		Reconfigs:       t.reconfEvents,
		FlushWritebacks: t.reconfWriteBk,
	}
}
