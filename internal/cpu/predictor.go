// Package cpu models the processor core of the simulated machine: a
// combined branch predictor matching the paper's baseline (Table 2:
// "2K-entry combined predictor, 3-cycle misprediction penalty") and an
// analytic timing model for a 4-wide out-of-order core.
package cpu

// PredictorEntries is the table size of each component of the combined
// predictor (the paper's "2K-entry combined predictor").
const PredictorEntries = 2048

// Predictor is a McFarling-style combined predictor: a bimodal
// component, a gshare component with a global history register, and a
// chooser table that learns which component to trust per branch.
// All tables hold 2-bit saturating counters.
type Predictor struct {
	bimodal [PredictorEntries]uint8
	gshare  [PredictorEntries]uint8
	chooser [PredictorEntries]uint8 // ≥2 favours gshare
	history uint64

	stats PredictorStats
}

// PredictorStats counts prediction outcomes.
type PredictorStats struct {
	Branches    uint64
	Mispredicts uint64
}

// MispredictRate returns mispredicts/branches, or 0 with no branches.
func (s PredictorStats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// NewPredictor constructs a predictor with weakly-taken initial state
// and a chooser with no initial bias.
func NewPredictor() *Predictor {
	p := &Predictor{}
	for i := range p.bimodal {
		p.bimodal[i] = 2 // weakly taken
		p.gshare[i] = 2
		p.chooser[i] = 1 // weakly bimodal
	}
	return p
}

// Stats returns a copy of the outcome counters.
func (p *Predictor) Stats() PredictorStats { return p.stats }

// ResetStats zeroes the outcome counters (tables keep their state).
func (p *Predictor) ResetStats() { p.stats = PredictorStats{} }

func taken(counter uint8) bool { return counter >= 2 }

func bump(counter uint8, t bool) uint8 {
	if t {
		if counter < 3 {
			return counter + 1
		}
		return counter
	}
	if counter > 0 {
		return counter - 1
	}
	return counter
}

// Predict records the outcome of the conditional branch at pc and
// reports whether the combined predictor predicted it correctly. The
// tables, chooser and global history are updated.
func (p *Predictor) Predict(pc uint64, outcome bool) bool {
	p.stats.Branches++
	bi := pc & (PredictorEntries - 1)
	gi := (pc ^ p.history) & (PredictorEntries - 1)

	bPred := taken(p.bimodal[bi])
	gPred := taken(p.gshare[gi])
	var pred bool
	if p.chooser[bi] >= 2 {
		pred = gPred
	} else {
		pred = bPred
	}

	// Chooser trains toward the component that was right when they
	// disagree.
	if bPred != gPred {
		p.chooser[bi] = bump(p.chooser[bi], gPred == outcome)
	}
	p.bimodal[bi] = bump(p.bimodal[bi], outcome)
	p.gshare[gi] = bump(p.gshare[gi], outcome)
	p.history = p.history<<1 | boolBit(outcome)

	correct := pred == outcome
	if !correct {
		p.stats.Mispredicts++
	}
	return correct
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
