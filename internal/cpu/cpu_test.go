package cpu

import (
	"math/rand"
	"testing"
)

func TestPredictorLearnsAlwaysTaken(t *testing.T) {
	p := NewPredictor()
	var wrong int
	for i := 0; i < 1000; i++ {
		if !p.Predict(0x40, true) {
			wrong++
		}
	}
	if wrong > 2 {
		t.Errorf("always-taken branch mispredicted %d times", wrong)
	}
}

func TestPredictorLearnsAlternating(t *testing.T) {
	// A strict alternation is learnable via gshare history.
	p := NewPredictor()
	var wrong int
	for i := 0; i < 2000; i++ {
		if !p.Predict(0x80, i%2 == 0) {
			wrong++
		}
	}
	if rate := float64(wrong) / 2000; rate > 0.1 {
		t.Errorf("alternating pattern mispredict rate %.2f, want <0.1 (gshare should learn it)", rate)
	}
}

func TestPredictorRandomIsHard(t *testing.T) {
	p := NewPredictor()
	rng := rand.New(rand.NewSource(7))
	var wrong int
	const n = 10000
	for i := 0; i < n; i++ {
		if !p.Predict(0x100, rng.Intn(2) == 0) {
			wrong++
		}
	}
	rate := float64(wrong) / n
	if rate < 0.3 || rate > 0.7 {
		t.Errorf("random outcomes mispredict rate %.2f, want ≈0.5", rate)
	}
}

func TestPredictorStats(t *testing.T) {
	p := NewPredictor()
	for i := 0; i < 10; i++ {
		p.Predict(4, true)
	}
	st := p.Stats()
	if st.Branches != 10 {
		t.Errorf("Branches = %d, want 10", st.Branches)
	}
	if st.MispredictRate() < 0 || st.MispredictRate() > 1 {
		t.Errorf("rate out of range: %v", st.MispredictRate())
	}
	p.ResetStats()
	if p.Stats() != (PredictorStats{}) {
		t.Error("ResetStats should zero counters")
	}
}

func TestPredictorStatsEmptyRate(t *testing.T) {
	var s PredictorStats
	if s.MispredictRate() != 0 {
		t.Error("empty rate should be 0")
	}
}

func TestTimingIssueOnly(t *testing.T) {
	tm := NewTiming(DefaultTimingConfig())
	tm.Issue(400)
	if got := tm.Cycles(); got != 100 {
		t.Errorf("400 instrs at width 4 = %d cycles, want 100", got)
	}
}

func TestTimingIssueRoundsUp(t *testing.T) {
	tm := NewTiming(DefaultTimingConfig())
	tm.Issue(5)
	if got := tm.Cycles(); got != 2 {
		t.Errorf("5 instrs = %d cycles, want 2", got)
	}
}

func TestTimingComponents(t *testing.T) {
	cfg := DefaultTimingConfig()
	tm := NewTiming(cfg)
	tm.Issue(4)
	tm.Mispredict()
	tm.L1Miss()
	tm.L2Miss()
	tm.TLBMiss()
	tm.Reconfigure(10)

	b := tm.Breakdown()
	if b.IssueCycles != 1 {
		t.Errorf("issue = %d", b.IssueCycles)
	}
	if b.BranchCycles != cfg.MispredictPenalty {
		t.Errorf("branch = %d", b.BranchCycles)
	}
	wantStall := uint64(float64(cfg.L2HitLatency)*cfg.L2Exposure) +
		uint64(float64(cfg.MemLatency)*cfg.MemExposure) +
		cfg.TLBMissCycles
	if b.StallCycles != wantStall {
		t.Errorf("stall = %d, want %d", b.StallCycles, wantStall)
	}
	wantReconf := cfg.ResizeFixedCycles + 10*cfg.WritebackCycles
	if b.ReconfCycles != wantReconf {
		t.Errorf("reconf = %d, want %d", b.ReconfCycles, wantReconf)
	}
	if b.L1Misses != 1 || b.L2Misses != 1 || b.TLBMisses != 1 || b.Mispredicts != 1 ||
		b.Reconfigs != 1 || b.FlushWritebacks != 10 {
		t.Errorf("event counts wrong: %+v", b)
	}
	sum := b.IssueCycles + b.StallCycles + b.BranchCycles + b.ReconfCycles
	if tm.Cycles() != sum {
		t.Errorf("Cycles() = %d, component sum = %d", tm.Cycles(), sum)
	}
}

func TestTimingZeroConfigDefaults(t *testing.T) {
	tm := NewTiming(TimingConfig{})
	if tm.Config().IssueWidth != 4 {
		t.Errorf("default issue width = %d, want 4", tm.Config().IssueWidth)
	}
	if tm.Config().L2Exposure <= 0 || tm.Config().MemExposure <= 0 {
		t.Error("default exposures should be positive")
	}
}

func TestTimingCyclesMonotone(t *testing.T) {
	tm := NewTiming(DefaultTimingConfig())
	prev := tm.Cycles()
	events := []func(){
		func() { tm.Issue(7) },
		func() { tm.Mispredict() },
		func() { tm.L1Miss() },
		func() { tm.L2Miss() },
		func() { tm.TLBMiss() },
		func() { tm.Reconfigure(3) },
	}
	for i, ev := range events {
		ev()
		if now := tm.Cycles(); now < prev {
			t.Errorf("event %d decreased cycles %d -> %d", i, prev, now)
		} else {
			prev = now
		}
	}
}
