// Package trace records the adaptation timeline of a run — every
// accepted reconfiguration and every hotspot promotion — and renders
// it as an ASCII chart, making the framework's multi-grain behaviour
// (paper Section 3.6) visible: the L1D switching at fine grain inside
// phases, the L2 at coarse grain across them.
package trace

import (
	"fmt"
	"io"
	"sort"

	"acedo/internal/telemetry"
)

// Kind labels a timeline event.
type Kind uint8

const (
	// KindReconfig is an accepted configuration change.
	KindReconfig Kind = iota
	// KindPromotion is a hotspot promotion.
	KindPromotion
)

// Event is one timeline entry.
type Event struct {
	Kind    Kind
	Instr   uint64
	Unit    string // reconfigurations: the unit name
	Setting int    // reconfigurations: the new setting value
	Label   string // promotions: the method name
}

// Recorder accumulates events. The zero value is ready to use.
type Recorder struct {
	events []Event
}

// Reconfig records an accepted configuration change. Install it via
// machine.Machine.OnReconfigure:
//
//	mach.OnReconfigure = rec.Reconfig
func (r *Recorder) Reconfig(unit string, setting int, instr uint64) {
	r.events = append(r.events, Event{Kind: KindReconfig, Instr: instr, Unit: unit, Setting: setting})
}

// Promotion records a hotspot promotion at the given instruction.
func (r *Recorder) Promotion(name string, instr uint64) {
	r.events = append(r.events, Event{Kind: KindPromotion, Instr: instr, Label: name})
}

var _ telemetry.Sink = (*Recorder)(nil)

// Emit implements telemetry.Sink, making the recorder one consumer of
// the unified event stream rather than a parallel mechanism:
// reconfiguration and promotion events are recorded, every other event
// type is ignored.
func (r *Recorder) Emit(e telemetry.Event) {
	switch e.Type {
	case telemetry.TypeReconfigure:
		if e.Reconfigure != nil {
			r.Reconfig(e.Reconfigure.Unit, e.Reconfigure.Setting, e.Instr)
		}
	case telemetry.TypePromotion:
		if e.Promotion != nil {
			r.Promotion(e.Promotion.Method, e.Instr)
		}
	}
}

// Events returns the recorded events in arrival order.
func (r *Recorder) Events() []Event { return r.events }

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Timeline renders the recording as one row per unit: the run is
// divided into `columns` equal slices of `totalInstr` instructions and
// each cell shows the setting active at the end of its slice (as the
// setting's index within the unit's observed settings: 0 = smallest
// seen, encoded '0'-'9' then 'a'-'z', clamped at 'z'). A '·' marks
// slices before the unit's first change.
func (r *Recorder) Timeline(w io.Writer, totalInstr uint64, columns int) {
	if columns <= 0 || totalInstr == 0 {
		fmt.Fprintln(w, "trace: empty timeline")
		return
	}

	// Per-unit events, in instruction order.
	perUnit := map[string][]Event{}
	var units []string
	settingsSeen := map[string]map[int]bool{}
	for _, e := range r.events {
		if e.Kind != KindReconfig {
			continue
		}
		if _, ok := perUnit[e.Unit]; !ok {
			units = append(units, e.Unit)
			settingsSeen[e.Unit] = map[int]bool{}
		}
		perUnit[e.Unit] = append(perUnit[e.Unit], e)
		settingsSeen[e.Unit][e.Setting] = true
	}
	sort.Strings(units)

	fmt.Fprintf(w, "adaptation timeline (%d columns × %d instructions each; 0-9a-z = setting rank, 0 smallest)\n",
		columns, totalInstr/uint64(columns))
	for _, u := range units {
		ranks := settingRanks(settingsSeen[u])
		evs := perUnit[u]
		row := make([]rune, columns)
		idx := 0
		current := -1
		for c := 0; c < columns; c++ {
			sliceEnd := totalInstr * uint64(c+1) / uint64(columns)
			for idx < len(evs) && evs[idx].Instr <= sliceEnd {
				current = evs[idx].Setting
				idx++
			}
			if current < 0 {
				row[c] = '·'
			} else {
				row[c] = rankRune(ranks[current])
			}
		}
		fmt.Fprintf(w, "%-4s |%s| %d reconfigurations\n", u, string(row), len(evs))
	}

	var promos int
	for _, e := range r.events {
		if e.Kind == KindPromotion {
			promos++
		}
	}
	fmt.Fprintf(w, "%d hotspot promotions, %d reconfigurations total\n",
		promos, r.Len()-promos)
}

// rankRune encodes a setting rank as one timeline character: '0'-'9'
// for ranks 0-9, 'a'-'z' for 10-35, clamped at 'z' beyond (a unit with
// more than 36 observed settings saturates rather than emitting
// garbage bytes).
func rankRune(rank int) rune {
	switch {
	case rank < 10:
		return rune('0' + rank)
	case rank < 36:
		return rune('a' + rank - 10)
	default:
		return 'z'
	}
}

// settingRanks maps each observed setting value to its ascending rank.
func settingRanks(seen map[int]bool) map[int]int {
	vals := make([]int, 0, len(seen))
	for v := range seen {
		vals = append(vals, v)
	}
	sort.Ints(vals)
	ranks := make(map[int]int, len(vals))
	for i, v := range vals {
		ranks[v] = i
	}
	return ranks
}
