package trace

import (
	"strings"
	"testing"

	"acedo/internal/telemetry"
)

func TestRecorderAccumulates(t *testing.T) {
	var r Recorder
	r.Reconfig("L1D", 8192, 100)
	r.Promotion("hot", 150)
	r.Reconfig("L2", 131072, 200)
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	evs := r.Events()
	if evs[0].Kind != KindReconfig || evs[0].Unit != "L1D" || evs[0].Setting != 8192 {
		t.Errorf("event 0 = %+v", evs[0])
	}
	if evs[1].Kind != KindPromotion || evs[1].Label != "hot" {
		t.Errorf("event 1 = %+v", evs[1])
	}
}

func TestTimelineRendering(t *testing.T) {
	var r Recorder
	// L1D: 64K until instr 500, then 8K.
	r.Reconfig("L1D", 65536, 100)
	r.Reconfig("L1D", 8192, 500)
	r.Promotion("hot", 50)

	var sb strings.Builder
	r.Timeline(&sb, 1000, 10)
	out := sb.String()
	if !strings.Contains(out, "L1D  |") {
		t.Fatalf("missing unit row:\n%s", out)
	}
	// First half at rank 1 (65536), second half at rank 0 (8192).
	if !strings.Contains(out, "1111000000") {
		t.Errorf("unexpected timeline row:\n%s", out)
	}
	if !strings.Contains(out, "2 reconfigurations") {
		t.Errorf("missing reconfiguration count:\n%s", out)
	}
	if !strings.Contains(out, "1 hotspot promotions") {
		t.Errorf("missing promotion count:\n%s", out)
	}
}

func TestTimelineBeforeFirstChange(t *testing.T) {
	var r Recorder
	r.Reconfig("L2", 131072, 900)
	var sb strings.Builder
	r.Timeline(&sb, 1000, 10)
	if !strings.Contains(sb.String(), "········00") {
		t.Errorf("slices before the first change should be dots:\n%s", sb.String())
	}
}

func TestTimelineEmpty(t *testing.T) {
	var r Recorder
	var sb strings.Builder
	r.Timeline(&sb, 0, 10)
	if !strings.Contains(sb.String(), "empty") {
		t.Error("zero-length run should render as empty")
	}
}

func TestTimelineRanksPastNine(t *testing.T) {
	// A unit with 12 observed settings used to render ranks 10 and 11
	// as the garbage bytes ':' and ';'; they must encode as 'a', 'b'.
	var r Recorder
	for i := 0; i < 12; i++ {
		r.Reconfig("IQ", (i+1)*16, uint64(100*(i+1)))
	}
	var sb strings.Builder
	r.Timeline(&sb, 1200, 12)
	out := sb.String()
	var row string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "IQ") {
			row = line
		}
	}
	if row == "" {
		t.Fatalf("missing IQ row:\n%s", out)
	}
	if !strings.Contains(row, "a") || !strings.Contains(row, "b") {
		t.Errorf("ranks 10/11 should encode as 'a'/'b':\n%s", row)
	}
	if strings.ContainsAny(row, ":;<=>?") {
		t.Errorf("garbage rank bytes leaked into timeline:\n%s", row)
	}
}

func TestRankRune(t *testing.T) {
	cases := map[int]rune{0: '0', 9: '9', 10: 'a', 35: 'z', 36: 'z', 100: 'z'}
	for rank, want := range cases {
		if got := rankRune(rank); got != want {
			t.Errorf("rankRune(%d) = %q, want %q", rank, got, want)
		}
	}
}

func TestRecorderIsTelemetrySink(t *testing.T) {
	var r Recorder
	var sink telemetry.Sink = &r
	sink.Emit(telemetry.Reconfigure("L1D", 32768, 100))
	sink.Emit(telemetry.Promotion("hot", 200))
	// Events of other types are ignored, not recorded.
	sink.Emit(telemetry.Event{Type: telemetry.TypeInterval, Instr: 300,
		Interval: &telemetry.IntervalMetrics{Seq: 1}})
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (interval events ignored)", r.Len())
	}
	evs := r.Events()
	if evs[0].Kind != KindReconfig || evs[0].Unit != "L1D" || evs[0].Setting != 32768 || evs[0].Instr != 100 {
		t.Errorf("reconfig event = %+v", evs[0])
	}
	if evs[1].Kind != KindPromotion || evs[1].Label != "hot" {
		t.Errorf("promotion event = %+v", evs[1])
	}
}

func TestSettingRanks(t *testing.T) {
	ranks := settingRanks(map[int]bool{64: true, 8: true, 32: true})
	if ranks[8] != 0 || ranks[32] != 1 || ranks[64] != 2 {
		t.Errorf("ranks = %v", ranks)
	}
}
