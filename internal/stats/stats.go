// Package stats provides the small statistical kit the evaluation
// uses: streaming mean/variance (Welford), coefficient of variation,
// and slice aggregates.
package stats

import "math"

// Finite reports whether x is neither NaN nor infinite — the guard the
// tuning managers apply before a measurement can enter their decision
// math (a corrupted sample must never poison an acceptance gate).
func Finite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// Welford accumulates a running mean and variance in one pass. The
// zero value is ready to use.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the sample mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance (0 with <2 observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// CoV returns the coefficient of variation: Std/Mean (0 when the mean
// is 0). The paper reports CoVs as percentages; callers multiply.
func (w *Welford) CoV() float64 {
	if w.mean == 0 {
		return 0
	}
	return w.Std() / math.Abs(w.mean)
}

// Mean returns the mean of a slice (0 when empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// CoV returns the coefficient of variation of a slice (0 when empty
// or zero-mean).
func CoV(xs []float64) float64 {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.CoV()
}

// Ratio returns num/den, or 0 when den is 0.
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
