package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestWelfordBasics(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Variance() != 0 || w.Std() != 0 || w.CoV() != 0 {
		t.Error("zero-value Welford should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Errorf("N = %d", w.N())
	}
	if !almostEq(w.Mean(), 5) {
		t.Errorf("Mean = %v, want 5", w.Mean())
	}
	if !almostEq(w.Variance(), 4) {
		t.Errorf("Variance = %v, want 4 (population)", w.Variance())
	}
	if !almostEq(w.Std(), 2) {
		t.Errorf("Std = %v, want 2", w.Std())
	}
	if !almostEq(w.CoV(), 0.4) {
		t.Errorf("CoV = %v, want 0.4", w.CoV())
	}
}

func TestWelfordSingleObservation(t *testing.T) {
	var w Welford
	w.Add(3)
	if w.Variance() != 0 {
		t.Error("variance of one observation should be 0")
	}
	if w.Mean() != 3 {
		t.Errorf("Mean = %v", w.Mean())
	}
}

func TestWelfordNegativeMeanCoV(t *testing.T) {
	var w Welford
	w.Add(-2)
	w.Add(-4)
	if w.CoV() < 0 {
		t.Error("CoV should use |mean|")
	}
}

func TestWelfordMatchesDirectComputation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = rng.Float64()*100 - 50
			w.Add(xs[i])
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		variance := 0.0
		for _, x := range xs {
			variance += (x - mean) * (x - mean)
		}
		variance /= float64(n)
		return math.Abs(w.Mean()-mean) < 1e-6 && math.Abs(w.Variance()-variance) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMeanAndCoVSlices(t *testing.T) {
	if Mean(nil) != 0 || CoV(nil) != 0 {
		t.Error("empty slices should yield 0")
	}
	if !almostEq(Mean([]float64{1, 2, 3}), 2) {
		t.Error("Mean wrong")
	}
	if CoV([]float64{5, 5, 5}) != 0 {
		t.Error("constant slice CoV should be 0")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Error("Ratio with zero denominator should be 0")
	}
	if !almostEq(Ratio(3, 4), 0.75) {
		t.Error("Ratio wrong")
	}
}

// Property: CoV is scale-invariant for positive scalings.
func TestCoVScaleInvariantProperty(t *testing.T) {
	f := func(seed int64, scale float64) bool {
		scale = math.Abs(scale)
		if scale < 1e-6 || scale > 1e6 || math.IsNaN(scale) || math.IsInf(scale, 0) {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		var a, b Welford
		for i := 0; i < n; i++ {
			x := 1 + rng.Float64()*10
			a.Add(x)
			b.Add(x * scale)
		}
		return math.Abs(a.CoV()-b.CoV()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
