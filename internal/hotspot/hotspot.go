// Package hotspot classifies detected hotspots by dynamic size — the
// heart of CU decoupling (paper Section 3.2.1): a hotspot is matched
// with the subset of configurable units whose reconfiguration
// intervals are in the same range as the hotspot's size, so
// low-overhead units are adapted at small-hotspot boundaries and
// high-overhead units at large-hotspot boundaries.
package hotspot

import "fmt"

// Class names the CU subset a hotspot adapts.
type Class int

const (
	// ClassNone marks hotspots too small to amortize even the
	// cheapest unit's reconfiguration; they are JIT-optimized but
	// not instrumented for tuning.
	ClassNone Class = iota
	// ClassMicro marks hotspots sized for the issue queue's
	// reconfiguration interval — the extension third CU (paper
	// Section 4.1: "we are implementing several more CUs, such as
	// the issue window and the reorder buffer"). Only used when
	// the bounds enable it.
	ClassMicro
	// ClassL1D marks hotspots sized for the L1 data cache's
	// reconfiguration interval (paper: 50 K–500 K instructions).
	ClassL1D
	// ClassL2 marks hotspots sized for the L2 cache's interval
	// (paper: ≥500 K instructions).
	ClassL2
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassMicro:
		return "micro"
	case ClassL1D:
		return "L1D"
	case ClassL2:
		return "L2"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Bounds holds the size thresholds in instructions.
type Bounds struct {
	// MicroMin, when positive, enables the micro class: hotspots
	// in [MicroMin, L1DMin) adapt the issue queue.
	MicroMin float64
	// L1DMin is the smallest mean invocation size that adapts the
	// L1D cache.
	L1DMin float64
	// L2Min is the smallest mean invocation size that adapts the
	// L2 cache; it is also the upper bound of the L1D class.
	L2Min float64
}

// PaperBounds returns the paper's thresholds (50 K / 500 K
// instructions), divided by scaleDiv (see DESIGN.md §4).
func PaperBounds(scaleDiv uint64) Bounds {
	if scaleDiv == 0 {
		scaleDiv = 1
	}
	return Bounds{
		L1DMin: 50_000 / float64(scaleDiv),
		L2Min:  500_000 / float64(scaleDiv),
	}
}

// WithMicro returns the bounds with the micro class enabled below the
// L1D class (paper-scale 5 K instructions, matching the issue queue's
// reconfiguration interval).
func (b Bounds) WithMicro(scaleDiv uint64) Bounds {
	if scaleDiv == 0 {
		scaleDiv = 1
	}
	b.MicroMin = 5_000 / float64(scaleDiv)
	return b
}

// Validate checks threshold ordering.
func (b Bounds) Validate() error {
	if b.L1DMin <= 0 || b.L2Min <= b.L1DMin {
		return fmt.Errorf("hotspot: bounds must satisfy 0 < L1DMin < L2Min, got %+v", b)
	}
	if b.MicroMin < 0 || (b.MicroMin > 0 && b.MicroMin >= b.L1DMin) {
		return fmt.Errorf("hotspot: MicroMin must satisfy 0 ≤ MicroMin < L1DMin, got %+v", b)
	}
	return nil
}

// Classify maps a hotspot's mean inclusive invocation size to its CU
// class.
func (b Bounds) Classify(meanSize float64) Class {
	switch {
	case meanSize >= b.L2Min:
		return ClassL2
	case meanSize >= b.L1DMin:
		return ClassL1D
	case b.MicroMin > 0 && meanSize >= b.MicroMin:
		return ClassMicro
	default:
		return ClassNone
	}
}
