package hotspot

import (
	"strings"
	"testing"
)

func TestPaperBounds(t *testing.T) {
	b := PaperBounds(1)
	if b.L1DMin != 50_000 || b.L2Min != 500_000 {
		t.Errorf("paper bounds = %+v", b)
	}
	b10 := PaperBounds(10)
	if b10.L1DMin != 5_000 || b10.L2Min != 50_000 {
		t.Errorf("scaled bounds = %+v", b10)
	}
	if PaperBounds(0) != PaperBounds(1) {
		t.Error("scale 0 should mean scale 1")
	}
}

func TestValidate(t *testing.T) {
	if err := PaperBounds(1).Validate(); err != nil {
		t.Errorf("paper bounds invalid: %v", err)
	}
	bad := []Bounds{
		{L1DMin: 0, L2Min: 10},
		{L1DMin: 10, L2Min: 10},
		{L1DMin: 10, L2Min: 5},
		{L1DMin: -1, L2Min: 5},
	}
	for _, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bounds %+v should be invalid", b)
		}
	}
}

func TestClassify(t *testing.T) {
	b := Bounds{L1DMin: 5_000, L2Min: 50_000}
	cases := []struct {
		size float64
		want Class
	}{
		{0, ClassNone},
		{4_999, ClassNone},
		{5_000, ClassL1D},
		{49_999, ClassL1D},
		{50_000, ClassL2},
		{1e9, ClassL2},
	}
	for _, c := range cases {
		if got := b.Classify(c.size); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.size, got, c.want)
		}
	}
}

func TestClassString(t *testing.T) {
	for _, c := range []Class{ClassNone, ClassL1D, ClassL2} {
		if s := c.String(); s == "" || strings.HasPrefix(s, "class(") {
			t.Errorf("class %d has no name", c)
		}
	}
	if Class(99).String() != "class(99)" {
		t.Error("unknown class string wrong")
	}
}
